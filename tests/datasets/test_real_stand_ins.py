"""Unit tests for the real-dataset stand-ins."""

import pytest

from repro.datasets.real_stand_ins import (
    REAL_GRAPH_SPECS,
    large_real_graph_names,
    load_real_stand_in,
    real_graph_names,
    small_real_graph_names,
)
from repro.exceptions import DatasetError
from repro.graph.scc import is_dag


class TestNames:
    def test_eleven_datasets(self):
        assert len(real_graph_names()) == 11

    def test_small_plus_large_partition(self):
        assert sorted(real_graph_names()) == sorted(
            small_real_graph_names() + large_real_graph_names()
        )

    def test_paper_table_order_starts_small(self):
        assert real_graph_names()[:5] == [
            "arxiv", "yago", "go", "pubmed", "citeseer",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_real_stand_in("nope")


@pytest.mark.parametrize("name", real_graph_names())
class TestEveryStandIn:
    def test_is_dag(self, name):
        assert is_dag(load_real_stand_in(name, scale=0.02))

    def test_deterministic(self, name):
        a = load_real_stand_in(name, scale=0.02, seed=3)
        b = load_real_stand_in(name, scale=0.02, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_named_after_dataset(self, name):
        assert load_real_stand_in(name, scale=0.02).name == name


class TestShapes:
    def test_small_graphs_full_size_by_default(self):
        for name in small_real_graph_names():
            spec = REAL_GRAPH_SPECS[name]
            graph = load_real_stand_in(name)
            assert graph.num_vertices == spec.paper_vertices

    def test_large_graphs_scaled_down_by_default(self):
        for name in large_real_graph_names():
            spec = REAL_GRAPH_SPECS[name]
            graph = load_real_stand_in(name)
            assert graph.num_vertices < spec.paper_vertices

    def test_scale_parameter_obeyed(self):
        g = load_real_stand_in("arxiv", scale=0.1)
        assert g.num_vertices == 600

    def test_minimum_size_floor(self):
        g = load_real_stand_in("arxiv", scale=1e-9)
        assert g.num_vertices == 16

    def test_uniprot_shape_many_roots_few_leaves(self):
        """The Uniprot rows of Table 1: roots ≫ leaves."""
        g = load_real_stand_in("uniprot22m", scale=0.005)
        assert len(g.roots()) > 10 * len(g.leaves())

    def test_go_shape_few_roots_many_leaves(self):
        g = load_real_stand_in("go")
        assert len(g.leaves()) > 10 * len(g.roots())

    def test_citation_graphs_denser_than_tree(self):
        g = load_real_stand_in("arxiv")
        assert g.num_edges > 3 * g.num_vertices

    def test_scaled_vertices_helper(self):
        spec = REAL_GRAPH_SPECS["citeseerx"]
        assert spec.scaled_vertices(0.001) == round(6540400 * 0.001)
        assert spec.scaled_vertices() == round(6540400 * spec.default_scale)
