"""Unit tests for the unified dataset registry."""

import pytest

from repro.datasets.registry import dataset_names, load_dataset
from repro.exceptions import DatasetError


class TestRegistry:
    def test_names_cover_both_suites(self):
        names = dataset_names()
        assert "arxiv" in names and "100M-10" in names
        assert len(names) == 11 + 16

    def test_load_real(self):
        g = load_dataset("go", scale=0.1)
        assert g.name == "go"
        assert g.num_vertices == round(6793 * 0.1)

    def test_load_synthetic_with_default_scale(self):
        g = load_dataset("10M")
        assert g.num_vertices == 10_000

    def test_load_synthetic_with_explicit_scale(self):
        g = load_dataset("10M", scale=0.0001)
        assert g.num_vertices == 1000

    def test_unknown_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("not-a-dataset")

    def test_seed_threaded_through(self):
        a = load_dataset("20M", scale=0.0005, seed=1)
        b = load_dataset("20M", scale=0.0005, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())
