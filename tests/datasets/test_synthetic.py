"""Unit tests for the synthetic dataset suite (Table 2)."""

import pytest

from repro.datasets.synthetic import (
    SYNTHETIC_SPECS,
    load_synthetic,
    synthetic_names,
)
from repro.exceptions import DatasetError
from repro.graph.scc import is_dag


class TestSpecs:
    def test_sixteen_rows(self):
        assert len(synthetic_names()) == 16

    def test_sparse_sweep_present(self):
        for n in (10, 50, 100, 200, 500):
            assert f"{n}M" in SYNTHETIC_SPECS

    def test_dense_variants_present(self):
        assert {"50M-5", "50M-10", "100M-5", "100M-10"} <= set(SYNTHETIC_SPECS)

    def test_paper_edges_formula(self):
        assert SYNTHETIC_SPECS["50M-10"].paper_edges == 500_000_000
        assert SYNTHETIC_SPECS["10M"].paper_edges == 10_000_000

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="unknown synthetic"):
            load_synthetic("5M")


class TestGeneration:
    def test_default_scale_sizes(self):
        g = load_synthetic("10M")
        assert g.num_vertices == 10_000

    def test_avg_degree_realised(self):
        g = load_synthetic("50M-5", scale=0.0002)
        assert g.num_edges == 5 * g.num_vertices

    def test_is_dag(self):
        for name in ("10M", "50M-5"):
            assert is_dag(load_synthetic(name, scale=0.0002))

    def test_deterministic(self):
        a = load_synthetic("20M", scale=0.0005, seed=1)
        b = load_synthetic("20M", scale=0.0005, seed=1)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_named_after_spec(self):
        assert load_synthetic("10M", scale=0.0005).name == "10M"
