"""Unit tests for the SCARAB query algorithm."""

import pytest

from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import random_dag
from repro.scarab.scar import ScarabIndex

from tests.conftest import assert_index_matches_oracle


class TestCorrectness:
    def test_feline_scar_matches_oracle_on_zoo(self, any_dag):
        index = ScarabIndex(any_dag, base_method="feline").build()
        assert_index_matches_oracle(index, any_dag)

    def test_grail_scar_matches_oracle_on_zoo(self, any_dag):
        index = ScarabIndex(any_dag, base_method="grail").build()
        assert_index_matches_oracle(index, any_dag)

    def test_any_registered_base_works(self):
        g = random_dag(60, avg_degree=2.0, seed=1)
        for base in ("bfs", "tc", "ferrari", "tf-label"):
            index = ScarabIndex(g, base_method=base).build()
            assert_index_matches_oracle(index, g)

    def test_base_params_forwarded(self, paper_dag):
        index = ScarabIndex(
            paper_dag, base_method="grail", base_params={"num_labelings": 4}
        ).build()
        assert index.base_index.num_labelings == 4


class TestStructure:
    def test_base_index_built_on_smaller_graph(self):
        g = random_dag(400, avg_degree=1.5, seed=2)
        index = ScarabIndex(g).build()
        assert index.backbone.graph.num_vertices < g.num_vertices
        assert index.base_index.graph is index.backbone.graph

    def test_query_before_build_raises(self, paper_dag):
        with pytest.raises(IndexNotBuiltError):
            ScarabIndex(paper_dag).query(0, 1)

    def test_index_size_includes_mapping(self, paper_dag):
        index = ScarabIndex(paper_dag).build()
        assert index.index_size_bytes() > index.base_index.index_size_bytes()

    def test_direct_edge_answered_locally(self, paper_dag):
        index = ScarabIndex(paper_dag).build()
        base_queries_before = index.base_index.stats.queries
        assert index.query(0, 2)  # direct edge a -> c
        assert index.base_index.stats.queries == base_queries_before

    def test_no_gateways_is_fast_negative(self):
        # Two isolated vertices: neither has gateways.
        from repro.graph.digraph import DiGraph

        g = DiGraph(4, [(0, 1), (2, 3)])
        index = ScarabIndex(g).build()
        assert not index.query(1, 2)
        assert index.stats.negative_cuts >= 1
