"""Unit tests for reachability-backbone extraction."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph, random_dag, tree_like_dag
from repro.graph.scc import is_dag
from repro.graph.traversal import dfs_reachable
from repro.scarab.backbone import extract_backbone


class TestSelection:
    def test_backbone_is_internal_vertices(self, paper_dag):
        backbone = extract_backbone(paper_dag)
        internal = {
            v
            for v in range(8)
            if paper_dag.in_degree(v) > 0 and paper_dag.out_degree(v) > 0
        }
        selected = {
            v for v in range(8) if backbone.backbone_id[v] != -1
        }
        assert selected == internal

    def test_mappings_are_inverse(self, any_dag):
        backbone = extract_backbone(any_dag)
        for b, original in enumerate(backbone.original_id):
            assert backbone.backbone_id[original] == b

    def test_edgeless_graph_empty_backbone(self):
        backbone = extract_backbone(DiGraph(5, []))
        assert backbone.size == 0

    def test_path_keeps_middle(self):
        backbone = extract_backbone(path_graph(5))
        assert backbone.size == 3  # endpoints are root/leaf


class TestReducedGraph:
    def test_backbone_graph_is_dag(self, any_dag):
        assert is_dag(extract_backbone(any_dag).graph)

    def test_backbone_preserves_reachability_between_members(self, any_dag):
        """Paths between internal vertices use only internal vertices, so
        the induced subgraph must preserve their reachability exactly."""
        backbone = extract_backbone(any_dag)
        members = list(backbone.original_id)
        for u in members:
            for v in members:
                original = dfs_reachable(any_dag, u, v)
                reduced = dfs_reachable(
                    backbone.graph,
                    backbone.backbone_id[u],
                    backbone.backbone_id[v],
                )
                assert original == reduced, (u, v)

    def test_reduction_dramatic_on_tree_like_graphs(self):
        """The Uniprot motivation: almost everything is a root or leaf."""
        g = tree_like_dag(2000, seed=1).reversed()
        backbone = extract_backbone(g)
        assert backbone.reduction_ratio(g) < 0.6

    def test_reduction_ratio_range(self):
        g = random_dag(200, avg_degree=2.0, seed=2)
        ratio = extract_backbone(g).reduction_ratio(g)
        assert 0.0 <= ratio <= 1.0

    def test_reduction_ratio_empty_graph(self):
        g = DiGraph(0, [])
        assert extract_backbone(g).reduction_ratio(g) == 0.0
