"""Batch-engine edge cases: empty batches and duplicate pairs.

Regression tests for two subtle batch behaviours:

* ``query_many([])`` returns ``[]`` without building masks, consulting
  observers, or touching an attached pool;
* duplicate survivor pairs are searched **once** — the representative's
  answer fans back out, and the stats deltas are multiplicity-scaled so
  the counters stay bit-identical to the scalar loop (which *would*
  repeat the search).
"""

import pytest

from repro.baselines.base import create_index
from repro.graph.generators import crown_graph, random_dag


def _duplicated_pairs(graph, times=3):
    n = graph.num_vertices
    pairs = [(u, v) for u in range(n) for v in range(n)]
    return pairs * times


class TestEmptyBatch:
    def test_no_pool_dispatch(self):
        index = create_index(
            "feline", random_dag(20, avg_degree=1.5, seed=2)
        ).build()
        index.enable_search_pool(2, min_batch=1)
        try:
            calls = []
            orig = index._search_pool.run
            index._search_pool.run = lambda *a, **kw: (
                calls.append(a), orig(*a, **kw)
            )[1]
            assert index.query_many([]) == []
            assert calls == []
            assert index.stats.queries == 0
        finally:
            index.close_search_pool()

    def test_observers_untouched(self):
        graph = random_dag(20, avg_degree=1.5, seed=2)
        index = create_index("feline", graph).build()

        class Exploding:
            num_vertices = graph.num_vertices
            k = 0

            def classify(self, sources, targets):
                raise AssertionError("observers consulted on empty batch")

            def decide(self, u, v):
                raise AssertionError("observers consulted on empty batch")

        index.attach_observers(Exploding())
        assert index.query_many([]) == []


class TestDuplicatePairs:
    @pytest.mark.parametrize("method", ["feline", "grail", "bfs"])
    def test_searched_once_inline(self, method):
        graph = crown_graph(5)
        index = create_index(method, graph).build()
        unique = {(u, v) for u, v in _duplicated_pairs(graph, times=1)}
        calls = []
        orig = index._search_pair

        def counting(u, v):
            calls.append((u, v))
            return orig(u, v)

        index._search_pair = counting
        index.query_many(_duplicated_pairs(graph, times=3))
        assert len(calls) == len(set(calls)), (
            f"{method}: duplicated pairs searched "
            f"{len(calls) - len(set(calls))} extra times"
        )
        assert set(calls) <= unique

    def test_searched_once_through_pool(self):
        graph = crown_graph(5)
        index = create_index("feline", graph).build()
        index.enable_search_pool(2, min_batch=1)
        try:
            seen = []
            orig = index._search_pool.run

            def spying(idx, sources, targets, survivors, weights=None):
                seen.append((len(survivors), None if weights is None
                             else list(weights)))
                return orig(idx, sources, targets, survivors,
                            weights=weights)

            index._search_pool.run = spying
            pairs = _duplicated_pairs(graph, times=3)
            index.query_many(pairs)
        finally:
            index.close_search_pool()
        assert seen, "the pool never ran"
        (dispatched, weights), = seen
        assert weights is not None and all(w == 3 for w in weights)
        assert dispatched * 3 == index.stats.searches

    @pytest.mark.parametrize("workers", [0, 2])
    def test_stats_stay_bit_identical(self, workers):
        graph = crown_graph(5)
        pairs = _duplicated_pairs(graph, times=3)
        batch_index = create_index("feline", graph).build()
        scalar_index = create_index("feline", graph).build()
        if workers:
            batch_index.enable_search_pool(workers, min_batch=1)
        try:
            batch = batch_index.query_many(pairs)
        finally:
            batch_index.close_search_pool()
        scalar = [scalar_index.query(u, v) for u, v in pairs]
        assert batch == scalar
        assert batch_index.stats.as_dict() == scalar_index.stats.as_dict()
        assert batch_index.stats.searches % 3 == 0
