"""ObserverLayer: soundness, scalar/batch agreement, selection, attach."""

import numpy as np
import pytest

import repro
from repro.baselines.base import create_index
from repro.exceptions import ReproError
from repro.graph.generators import crown_graph, random_dag
from repro.perf.observers import ObserverLayer, build_observers
from tests.conftest import all_pairs, reachability_oracle

GRAPHS = [
    random_dag(80, avg_degree=2.0, seed=1),
    random_dag(50, avg_degree=3.5, seed=7),
    crown_graph(6),
]


class TestSoundness:
    """Every observer verdict must agree with exact reachability."""

    @pytest.mark.parametrize("k", [0, 1, 4, 16])
    @pytest.mark.parametrize(
        "graph", GRAPHS, ids=["sparse", "dense", "crown"]
    )
    def test_classify_never_lies(self, graph, k):
        layer = build_observers(graph, k=k)
        oracle = reachability_oracle(graph)
        pairs = all_pairs(graph)
        sources = np.array([u for u, _ in pairs])
        targets = np.array([v for _, v in pairs])
        positive, negative = layer.classify(sources, targets)
        assert not (positive & negative).any(), "masks must be disjoint"
        for (u, v), pos, neg in zip(pairs, positive, negative):
            if u == v:
                continue  # reflexive pairs are the engine's concern
            if pos:
                assert oracle(u, v) is True, f"false positive on {(u, v)}"
            if neg:
                assert oracle(u, v) is False, f"false negative on {(u, v)}"

    @pytest.mark.parametrize("k", [0, 8])
    def test_decide_matches_classify(self, k):
        graph = random_dag(60, avg_degree=2.5, seed=3)
        layer = build_observers(graph, k=k)
        pairs = [(u, v) for u, v in all_pairs(graph) if u != v]
        sources = np.array([u for u, _ in pairs])
        targets = np.array([v for _, v in pairs])
        positive, negative = layer.classify(sources, targets)
        for (u, v), pos, neg in zip(pairs, positive, negative):
            expected = True if pos else False if neg else None
            assert layer.decide(u, v) is expected


class TestSelection:
    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            build_observers(random_dag(10, avg_degree=1.0, seed=0), k=-1)

    def test_k_clamped_to_vertex_count(self):
        graph = random_dag(5, avg_degree=1.0, seed=0)
        layer = build_observers(graph, k=64)
        assert layer.k <= graph.num_vertices
        assert len(set(layer.supports.tolist())) == layer.k

    def test_zero_k_layer_has_no_supports(self):
        graph = random_dag(30, avg_degree=2.0, seed=2)
        layer = build_observers(graph, k=0)
        assert layer.k == 0
        assert layer.fwd_bits.shape == (graph.num_vertices, 0)
        sources = np.arange(graph.num_vertices - 1)
        positive, _ = layer.classify(sources, sources + 1)
        assert not positive.any()

    def test_memory_bytes_counts_every_array(self):
        graph = random_dag(40, avg_degree=2.0, seed=4)
        layer = build_observers(graph, k=8)
        assert layer.memory_bytes() >= 4 * 8 * graph.num_vertices
        assert repr(layer).startswith("<ObserverLayer")


class TestAttach:
    def test_attach_and_property(self):
        graph = random_dag(30, avg_degree=2.0, seed=5)
        index = create_index("feline", graph).build()
        assert index.observers is None
        layer = build_observers(graph, k=4)
        assert index.attach_observers(layer) is layer
        assert index.observers is layer
        assert index.attach_observers(None) is None
        assert index.observers is None

    def test_vertex_count_mismatch_rejected(self):
        index = create_index(
            "feline", random_dag(30, avg_degree=2.0, seed=5)
        ).build()
        layer = build_observers(random_dag(20, avg_degree=2.0, seed=5), k=2)
        with pytest.raises(ReproError):
            index.attach_observers(layer)


class TestMonotonicity:
    """Observers only ever shrink the survivor set."""

    @pytest.mark.parametrize("method", ["feline", "grail", "bfs"])
    def test_searches_never_increase(self, method):
        graph = random_dag(80, avg_degree=2.0, seed=9)
        pairs = all_pairs(graph)
        plain = create_index(method, graph).build()
        plain.query_many(pairs)
        observed = create_index(method, graph).build()
        observed.attach_observers(build_observers(graph, k=8))
        assert observed.query_many(pairs) == plain.query_many(pairs)
        assert observed.stats.searches <= plain.stats.searches

    def test_observers_decide_on_crown_graph(self):
        # Crown graphs defeat FELINE's cuts; supporting vertices still
        # collapse most pairs, which is the whole point of the layer.
        graph = crown_graph(6)
        pairs = all_pairs(graph)
        plain = create_index("feline", graph).build()
        plain.query_many(pairs)
        observed = create_index("feline", graph).build()
        observed.attach_observers(build_observers(graph, k=12))
        observed.query_many(pairs)
        hits = (
            observed.stats.observer_positive
            + observed.stats.observer_negative
        )
        assert hits > 0
        assert observed.stats.searches < plain.stats.searches


class TestFacade:
    def test_observers_knob(self):
        edges = [(0, 1), (1, 2), (2, 3), (4, 3), (3, 0)]
        plain = repro.Reachability(edges)
        observed = repro.Reachability(edges, observers=4)
        pairs = [(u, v) for u in range(5) for v in range(5)]
        assert observed.reachable_many(pairs) == plain.reachable_many(pairs)

    def test_api_build_index_forwards(self):
        oracle = repro.api.build_index(
            [(0, 1), (1, 2)], observers=2
        )
        assert oracle.index.observers is not None
        assert oracle.reachable(0, 2) is True
        assert oracle.reachable(2, 0) is False


class TestRoundTripPersistence:
    @pytest.mark.parametrize("mmap", [False, True])
    @pytest.mark.parametrize("k", [0, 8])
    def test_save_load_preserves_layer(self, tmp_path, mmap, k):
        from repro.core.persistence import load_index, save_index
        from repro.core.query import FelineIndex

        graph = random_dag(60, avg_degree=2.0, seed=6)
        index = FelineIndex(graph).build()
        index.attach_observers(build_observers(graph, k=k))
        path = tmp_path / "observed.bin"
        save_index(index, path)
        loaded = load_index(graph, path, mmap=mmap)
        assert loaded.observers is not None
        assert loaded.observers.k == index.observers.k
        pairs = all_pairs(graph)
        assert loaded.query_many(pairs) == index.query_many(pairs)
        reloaded = ObserverLayer(
            t1=loaded.observers.t1,
            t2=loaded.observers.t2,
            fmax=loaded.observers.fmax,
            bmin=loaded.observers.bmin,
            supports=loaded.observers.supports,
            fwd_bits=loaded.observers.fwd_bits,
            bwd_bits=loaded.observers.bwd_bits,
        )
        np.testing.assert_array_equal(reloaded.t1, index.observers.t1)

    def test_v1_cannot_carry_observers(self, tmp_path):
        from repro.core.persistence import save_index
        from repro.core.query import FelineIndex
        from repro.exceptions import PersistenceError

        graph = random_dag(20, avg_degree=2.0, seed=6)
        index = FelineIndex(graph).build()
        index.attach_observers(build_observers(graph, k=2))
        with pytest.raises(PersistenceError):
            save_index(index, tmp_path / "v1.bin", version=1)
