"""SearchPool: fork dispatch, in-process fallback, lifecycle, metrics."""

import pytest

import repro.perf.pool as poolmod
from repro.baselines.base import create_index
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import crown_graph, random_dag
from repro.obs.metrics import metrics_enabled
from repro.perf.pool import SearchPool, fork_available


def _built_index(method="feline", n=60, seed=3):
    g = random_dag(n, avg_degree=2.0, seed=seed)
    return create_index(method, g).build()


def _search_heavy_index():
    # Crown graphs defeat FELINE's cuts: every non-trivial pair searches.
    return create_index("feline", crown_graph(6)).build()


class TestLifecycle:
    def test_enable_requires_build(self):
        g = random_dag(20, avg_degree=1.5, seed=1)
        index = create_index("feline", g)
        with pytest.raises(IndexNotBuiltError):
            index.enable_search_pool(2)

    def test_workers_at_most_one_detaches(self):
        index = _built_index()
        assert index.enable_search_pool(2) is not None
        assert index.enable_search_pool(1) is None
        assert index.search_pool is None
        assert index.enable_search_pool(0) is None

    def test_reenable_closes_previous_pool(self):
        index = _built_index()
        first = index.enable_search_pool(2)
        second = index.enable_search_pool(2)
        assert second is not first
        assert index.search_pool is second
        if first.mode == "fork":
            assert first.closed
        index.close_search_pool()

    def test_close_is_idempotent(self):
        index = _built_index()
        index.enable_search_pool(2)
        index.close_search_pool()
        index.close_search_pool()
        assert index.search_pool is None

    def test_context_manager_closes(self):
        index = _built_index()
        with SearchPool(index, workers=2) as pool:
            pass
        if pool.mode == "fork":
            assert pool.closed


@pytest.mark.skipif(not fork_available(), reason="fork-only platform test")
class TestForkMode:
    def test_pooled_answers_and_stats_match_plain_batch(self):
        pooled = _search_heavy_index()
        plain = _search_heavy_index()
        n = pooled.graph.num_vertices
        pairs = [(u, v) for u in range(n) for v in range(n)]
        pooled.enable_search_pool(2, min_batch=1)
        try:
            assert pooled.search_pool.mode == "fork"
            batch = pooled.query_many(pairs)
        finally:
            pooled.close_search_pool()
        assert batch == plain.query_many(pairs)
        # expanded/pruned accrue worker-side and are merged back.
        assert pooled.stats.as_dict() == plain.stats.as_dict()
        assert pooled.stats.expanded > 0

    def test_min_batch_keeps_small_batches_in_process(self):
        index = _search_heavy_index()
        pool = index.enable_search_pool(2, min_batch=10_000)
        try:
            def boom(*args):
                raise AssertionError("pool dispatched below min_batch")

            pool.run = boom
            n = index.graph.num_vertices
            answers = index.query_many([(u, (u + 1) % n) for u in range(n)])
            assert len(answers) == n
        finally:
            index.close_search_pool()


class TestInlineFallback:
    """Spawn-only platforms (no fork) degrade to in-process execution."""

    def test_no_fork_means_inline_mode(self, monkeypatch):
        monkeypatch.setattr(poolmod, "fork_available", lambda: False)
        index = _search_heavy_index()
        pool = index.enable_search_pool(2, min_batch=1)
        assert pool.mode == "inline"
        assert not pool.closed  # inline pools hold no processes

    def test_inline_answers_and_stats_match(self, monkeypatch):
        monkeypatch.setattr(poolmod, "fork_available", lambda: False)
        pooled = _search_heavy_index()
        plain = _search_heavy_index()
        n = pooled.graph.num_vertices
        pairs = [(u, v) for u in range(n) for v in range(n)]
        pooled.enable_search_pool(2, min_batch=1)
        try:
            batch = pooled.query_many(pairs)
        finally:
            pooled.close_search_pool()
        assert batch == plain.query_many(pairs)
        assert pooled.stats.as_dict() == plain.stats.as_dict()

    def test_repr_shows_mode(self, monkeypatch):
        monkeypatch.setattr(poolmod, "fork_available", lambda: False)
        index = _built_index()
        pool = index.enable_search_pool(3, min_batch=7)
        assert repr(pool) == "<SearchPool mode=inline workers=3 min_batch=7>"


class TestObservability:
    def test_pool_tasks_counter_and_chunk_histogram(self):
        with metrics_enabled() as reg:
            index = _search_heavy_index()
            index.enable_search_pool(2, min_batch=1)
            try:
                mode = index.search_pool.mode
                n = index.graph.num_vertices
                index.query_many(
                    [(u, v) for u in range(n) for v in range(n)]
                )
            finally:
                index.close_search_pool()
        tasks = reg.counter(
            "repro_pool_tasks_total", method="feline", mode=mode
        )
        assert tasks.value == index.stats.searches > 0
        if mode == "fork":
            chunk0 = reg.histogram(
                "repro_pool_chunk_seconds", method="feline", worker="0"
            )
            assert chunk0.count >= 1

    def test_dispatch_span_traced(self):
        from repro.obs.spans import disable_tracing, enable_tracing

        tracer = enable_tracing()
        try:
            index = _search_heavy_index()
            index.enable_search_pool(2, min_batch=1)
            try:
                n = index.graph.num_vertices
                index.query_many(
                    [(u, v) for u in range(n) for v in range(n)]
                )
            finally:
                index.close_search_pool()
            spans = [
                s for s in tracer.spans() if s.name == "pool.dispatch"
            ]
        finally:
            disable_tracing()
        assert spans
        assert spans[0].attributes["pairs"] == index.stats.searches


class TestBudgetsStayScalar:
    def test_budgeted_batch_bypasses_pool(self):
        from repro.resilience import QueryBudget

        index = _search_heavy_index()
        pool = index.enable_search_pool(2, min_batch=1)
        try:
            def boom(*args):
                raise AssertionError("budgeted batch reached the pool")

            pool.run = boom
            n = index.graph.num_vertices
            budget = QueryBudget(max_steps=1_000_000, policy="unknown")
            answers = index.query_many(
                [(u, v) for u in range(n) for v in range(n)], budget=budget
            )
            assert len(answers) == n * n
        finally:
            index.close_search_pool()
