"""Unit tests for :mod:`repro.perf.kernels`: selection, dispatch, tiers.

The bit-identity contract itself lives in
``tests/property/test_kernel_equivalence.py``; this file covers the
machinery around it — backend discovery and the environment knobs, the
explicit-numba refusal, the vectorized wide-slice path, the one-call
batch survivor sweep, the dispatch/shared-bytes instruments, and the
:func:`~repro.perf.kernels.bounded_search` degradation engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import create_index
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import crown_graph, random_dag
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.perf import kernels
from repro.perf.kernels import (
    KERNEL_BACKENDS,
    VECTOR_MIN_DEGREE,
    available_backends,
    bounded_search,
    describe_backend,
    numba_available,
    resolve_backend,
)


@pytest.fixture
def no_numba(monkeypatch):
    """Force the numba-absent world regardless of the host machine."""
    monkeypatch.setattr(kernels, "_numba_checked", True)
    monkeypatch.setattr(kernels, "_NUMBA_VERSION", None)


@pytest.fixture
def interpreted_numba(monkeypatch):
    """A working 'numba' tier everywhere: the kernel bodies, interpreted."""
    if not numba_available():
        monkeypatch.setattr(
            kernels, "_native", kernels._compile_tier(lambda f: f)
        )
        monkeypatch.setattr(kernels, "_numba_checked", True)
        monkeypatch.setattr(kernels, "_NUMBA_VERSION", "interpreted")


class TestBackendResolution:
    def test_auto_without_numba_is_numpy(self, no_numba, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_backend() == "numpy"
        assert resolve_backend("auto") == "numpy"
        assert available_backends() == ("numpy", "python")

    def test_auto_with_numba_is_numba(self, interpreted_numba, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_backend() == "numba"
        assert available_backends() == KERNEL_BACKENDS

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert resolve_backend() == "python"
        assert resolve_backend("auto") == "python"
        # An explicit request always beats the environment.
        assert resolve_backend("numpy") == "numpy"

    def test_repro_no_numba_hides_an_installed_numba(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numba_checked", False)
        monkeypatch.setattr(kernels, "_NUMBA_VERSION", None)
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        assert not numba_available()
        assert "numba" not in available_backends()

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_explicit_numba_refused_when_absent(self, no_numba):
        # A silent downgrade would invalidate a benchmark that believes
        # it measured numba.
        with pytest.raises(ReproError, match="not importable"):
            resolve_backend("numba")

    def test_describe_backend_stanza(self, no_numba):
        doc = describe_backend()
        assert doc["kernel_backend"] == "numpy"
        assert doc["numba_version"] is None
        assert doc["available_backends"] == ["numpy", "python"]


class TestIndexBinding:
    def test_set_kernel_before_and_after_build(self):
        g = random_dag(40, avg_degree=2.0, seed=3)
        index = create_index("feline", g)
        assert index.set_kernel("numpy") == "numpy"
        index.build()
        assert index.kernel_backend == "numpy"
        assert index.set_kernel("python") == "python"
        assert index._kernel is None  # python = the original loops

    def test_family_without_native_path_reports_python(self):
        g = random_dag(30, avg_degree=2.0, seed=3)
        index = create_index("bfs", g)
        index.set_kernel("numpy")  # resolvable, but bfs has no kernel
        index.build()
        assert index.kernel_backend == "python"

    def test_invalid_kernel_rejected_before_build(self):
        g = random_dag(10, avg_degree=1.0, seed=3)
        with pytest.raises(ReproError, match="unknown kernel backend"):
            create_index("feline", g).set_kernel("fortran")


class TestWideSlices:
    def test_high_degree_vertices_take_the_vectorized_path(self):
        # Degrees far above VECTOR_MIN_DEGREE force _expand_wide; the
        # answers and counters must still match the python loops.
        fan = 3 * VECTOR_MIN_DEGREE
        edges = [(0, k) for k in range(1, fan + 1)]
        edges += [(k, fan + 1) for k in range(1, fan + 1)]
        edges += [(fan + 1, fan + 2), (0, fan + 3)]  # a dead-end branch
        g = DiGraph(fan + 4, edges, name="wide-fan")
        python = create_index("feline", g)
        python.set_kernel("python")
        python.build()
        numpy_ix = create_index("feline", g)
        numpy_ix.set_kernel("numpy")
        numpy_ix.build()
        pairs = [(u, v) for u in range(g.num_vertices) for v in (0, fan + 2)]
        assert numpy_ix.query_many(pairs) == python.query_many(pairs)
        assert numpy_ix.stats.as_dict() == python.stats.as_dict()


class TestBatchSweep:
    def test_survivors_answered_in_one_native_call(
        self, interpreted_numba, monkeypatch
    ):
        g = crown_graph(5)
        index = create_index("feline", g)
        index.set_kernel("numba")
        index.build()
        kernel = index._kernel
        calls = []
        original = kernel.search_batch

        def spy(us, vs):
            calls.append(len(us))
            return original(us, vs)

        monkeypatch.setattr(kernel, "search_batch", spy)
        pairs = [
            (u, v) for u in range(g.num_vertices)
            for v in range(g.num_vertices)
        ]
        answers = index.query_many(pairs)
        assert calls, "batch engine never dispatched the native sweep"
        assert sum(calls) <= len(pairs)
        python = create_index("feline", g)
        python.set_kernel("python")
        python.build()
        assert answers == python.query_many(pairs)
        assert index.stats.as_dict() == python.stats.as_dict()


class TestInstruments:
    def test_dispatch_counter_and_shared_bytes_gauge(self):
        g = crown_graph(4)
        registry = enable_metrics()
        try:
            index = create_index("feline", g)
            index.set_kernel("numpy")
            index.build()
            for u in range(g.num_vertices):
                for v in range(g.num_vertices):
                    index.query(u, v)
            counter = registry.counter(
                "repro_kernel_dispatch_total",
                backend="numpy", method="feline",
            )
            assert counter.value > 0
            pages = index.enable_shared_pages()
            gauge = registry.gauge(
                "repro_shared_pages_bytes", method="feline"
            )
            if pages is not None:
                assert gauge.value == pages.nbytes > 0
                index.close_shared_pages()
                assert gauge.value == 0
        finally:
            disable_metrics()


class TestBoundedSearch:
    @pytest.mark.parametrize("backend", ["numpy", "python", "numba"])
    def test_tiers_agree_with_the_python_engine(
        self, backend, interpreted_numba
    ):
        g = random_dag(60, avg_degree=2.0, seed=9)
        rng = np.random.default_rng(9)
        pairs = rng.integers(0, g.num_vertices, size=(60, 2))
        for cap in (1, 3, 5, 1000):
            for u, v in pairs:
                expected = bounded_search(
                    g, int(u), int(v), cap, backend="python"
                )
                got = bounded_search(g, int(u), int(v), cap, backend=backend)
                assert got == expected, (
                    f"cap={cap} ({u}->{v}): {backend} said {got}, "
                    f"python said {expected}"
                )
