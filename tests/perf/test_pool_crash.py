"""SearchPool crash hardening: murdered workers, respawn bound, metrics."""

import os
import signal

import pytest

from repro.baselines.base import create_index
from repro.graph.generators import crown_graph
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.perf.pool import MAX_RESPAWNS, SearchPool, fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="pool crash tests need the fork start method"
)


def search_heavy_index():
    # Crown graphs defeat FELINE's cuts: every non-trivial pair survives
    # to the online search, so batches actually reach the pool.
    return create_index("feline", crown_graph(8)).build()


def all_pairs(index):
    n = index.graph.num_vertices
    return [(u, v) for u in range(n) for v in range(n)]


def kill_one_worker(pool):
    procs = pool._worker_snapshot()
    assert procs, "expected live pool workers"
    os.kill(procs[0].pid, signal.SIGKILL)
    procs[0].join(timeout=2.0)  # reap so exitcode is visible


@pytest.fixture
def index():
    idx = search_heavy_index()
    yield idx
    idx.close_search_pool()


class TestWorkerDeath:
    def test_killed_worker_answers_stay_correct(self, index):
        pairs = all_pairs(index)
        reference = list(index.query_many(pairs))
        pool = index.enable_search_pool(2)
        assert pool.mode == "fork"
        kill_one_worker(pool)
        assert list(index.query_many(pairs)) == reference
        assert pool.worker_deaths == 1
        # The pool respawned: still fork mode, fresh worker cohort.
        assert pool.mode == "fork"
        assert pool._pool is not None

    def test_death_mid_dispatch_recomputes_lost_chunks(self, index):
        pairs = all_pairs(index)
        reference = list(index.query_many(pairs))
        pool = index.enable_search_pool(2)

        # Arm the murder inside the dispatch loop itself: the first
        # damage poll kills a worker, so chunks are genuinely in flight.
        armed = {"fired": False}
        original = pool._pool_damaged

        def kill_then_check():
            if not armed["fired"]:
                armed["fired"] = True
                kill_one_worker(pool)
            return original()

        pool._pool_damaged = kill_then_check
        try:
            assert list(index.query_many(pairs)) == reference
        finally:
            pool._pool_damaged = original
        assert pool.worker_deaths == 1

    def test_deaths_counter_metric(self, index):
        registry = enable_metrics()
        try:
            pool = index.enable_search_pool(2)
            kill_one_worker(pool)
            index.query_many(all_pairs(index))
            counters = registry.snapshot()["counters"]
            assert any(
                key.startswith("repro_pool_worker_deaths_total")
                for key in counters
            ), sorted(counters)
        finally:
            disable_metrics()


class TestRespawnBound:
    def test_degrades_to_inline_after_max_respawns(self, index):
        pairs = all_pairs(index)
        reference = list(index.query_many(pairs))
        pool = index.enable_search_pool(2)
        for death in range(MAX_RESPAWNS + 1):
            kill_one_worker(pool)
            assert list(index.query_many(pairs)) == reference
            assert pool.worker_deaths == death + 1
        # Respawn budget spent: the pool now runs everything inline,
        # and stays correct doing so.
        assert pool.mode == "inline"
        assert pool._pool is None
        assert pool._respawns == MAX_RESPAWNS
        assert list(index.query_many(pairs)) == reference


class TestTeardownAfterDeath:
    def test_close_does_not_hang_on_poisoned_pool(self, index):
        pool = index.enable_search_pool(2)
        kill_one_worker(pool)
        # A SIGKILLed worker can die holding the shared queue lock;
        # close() must still return (bounded teardown + hard kill).
        pool.close()
        pool.close()
        assert pool.closed

    def test_context_manager_survives_death(self):
        idx = search_heavy_index()
        with SearchPool(idx, workers=2) as pool:
            kill_one_worker(pool)
        assert pool.closed
