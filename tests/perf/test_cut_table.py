"""Cut-table plumbing: cached views, helper codecs, table lifecycle."""

import numpy as np

from repro.baselines.base import available_methods, create_index
from repro.core.query import FelineCutTable, FelineIndex
from repro.graph.generators import random_dag
from repro.perf.cut_table import (
    SearchOnlyCutTable,
    SwappedCutTable,
    pack_bigints,
    segment_keys,
    segmented_arrays,
    view_i64,
)


class TestCachedViews:
    """FelineCoordinates.views must materialize exactly once: repeated
    batch calls reuse the same numpy objects instead of re-running
    np.asarray per call (the regression the cut-table refactor fixed)."""

    def test_views_cached_across_calls(self):
        g = random_dag(50, avg_degree=2.0, seed=1)
        index = FelineIndex(g).build()
        coords = index.coordinates
        first = coords.views
        second = coords.views
        assert first is second
        assert first.x is second.x and first.y is second.y
        assert first.levels is second.levels
        assert first.start is second.start and first.post is second.post

    def test_cut_table_shares_the_views(self):
        g = random_dag(50, avg_degree=2.0, seed=2)
        index = FelineIndex(g).build()
        table = index._cut_table
        views = index.coordinates.views
        assert isinstance(table, FelineCutTable)
        assert table.x is views.x and table.y is views.y

    def test_cut_table_survives_repeated_batches(self):
        g = random_dag(50, avg_degree=2.0, seed=3)
        index = FelineIndex(g).build()
        table = index._cut_table
        pairs = [(u, (u + 5) % 50) for u in range(50)]
        index.query_many(pairs)
        index.query_many(pairs)
        assert index._cut_table is table

    def test_loaded_index_gets_a_cut_table(self, tmp_path):
        from repro.core.persistence import load_index, save_index

        g = random_dag(40, avg_degree=2.0, seed=4)
        index = FelineIndex(g).build()
        path = tmp_path / "idx.feline"
        save_index(index, path)
        loaded = load_index(g, path)
        assert loaded._cut_table is not None
        pairs = [(u, (u + 3) % 40) for u in range(40)]
        assert loaded.query_many(pairs) == index.query_many(pairs)


class TestHelpers:
    def test_view_i64_is_stable_and_correct(self):
        from array import array

        values = array("l", [5, 1, 4])
        view = view_i64(values)
        assert view.dtype == np.int64
        assert view.tolist() == [5, 1, 4]

    def test_pack_bigints_round_trip(self):
        bits = [0b1011, 0, 1 << 70]
        packed = pack_bigints(bits, 71)
        assert packed.shape == (3, 9)
        for row, value in zip(packed, bits):
            for bit in range(71):
                stored = bool((row[bit >> 3] >> (bit & 7)) & 1)
                assert stored == bool(value >> bit & 1)

    def test_pack_bigints_empty(self):
        assert pack_bigints([], 16).shape == (0, 2)

    def test_segmented_arrays_and_keys(self):
        flat, indptr = segmented_arrays([[3, 7], [], [1]])
        assert flat.tolist() == [3, 7, 1]
        assert indptr.tolist() == [0, 2, 2, 3]
        keys = segment_keys(flat, indptr, universe=10)
        # owner * universe + value, sorted within each segment
        assert keys.tolist() == [3, 7, 21]


class TestWrapperTables:
    def test_search_only_decides_nothing(self):
        table = SearchOnlyCutTable()
        s = np.array([0, 1, 2])
        positive, negative = table.classify(s, s)
        assert not positive.any() and not negative.any()
        assert positive is not negative  # engine mutates them in place

    def test_swapped_flips_the_arguments(self):
        class Recorder:
            counts_cuts = True

            def classify(self, sources, targets):
                self.seen = (sources, targets)
                return (
                    np.zeros(len(sources), dtype=bool),
                    np.zeros(len(sources), dtype=bool),
                )

        inner = Recorder()
        swapped = SwappedCutTable(inner)
        s = np.array([1, 2])
        t = np.array([3, 4])
        swapped.classify(s, t)
        assert inner.seen[0] is t and inner.seen[1] is s
        assert swapped.counts_cuts is True


# Snapshotted at collection time: some test modules register throwaway
# methods in the global registry, which rightly declare no cut table.
BUILTIN_METHODS = available_methods()


class TestEveryFamilyMaterializes:
    def test_all_registered_methods_build_a_table(self):
        g = random_dag(30, avg_degree=2.0, seed=5)
        for method in BUILTIN_METHODS:
            index = create_index(method, g).build()
            assert index._cut_table is not None, method
