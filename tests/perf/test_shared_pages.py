"""Lifecycle tests for :class:`repro.perf.shm.SharedIndexPages`.

The arena's contract: arrays round-trip bit-exactly through shared
memory, unrelated processes can attach by manifest (and their close is
borrower-close, never an unlink), the owner's close — or, as a backstop,
its finalizer — removes the ``/dev/shm`` name immediately, and every
failure mode degrades to fork-COW instead of breaking the index.  An
autouse fixture asserts no test leaks a ``/dev/shm`` segment.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.baselines.base import available_methods, create_index
from repro.exceptions import ReproError
from repro.graph.generators import crown_graph, random_dag
from repro.perf.shm import SharedIndexPages, shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable on this platform",
)

SHM_DIR = "/dev/shm"


def _shm_entries() -> set[str] | None:
    if not os.path.isdir(SHM_DIR):
        return None
    return {n for n in os.listdir(SHM_DIR) if n.startswith("psm_")}


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    gc.collect()
    if before is not None:
        leaked = _shm_entries() - before
        assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


def _sample_arrays() -> dict[str, np.ndarray]:
    return {
        "weights": np.arange(100, dtype=np.int64),
        "coords": np.linspace(0.0, 1.0, 33, dtype=np.float64),
        "bits": np.array([[1, 0], [0, 1]], dtype=np.uint8),
        "empty": np.empty(0, dtype=np.int64),
    }


class TestArenaBasics:
    def test_create_view_roundtrip(self):
        arrays = _sample_arrays()
        with SharedIndexPages.create(arrays, label="t") as pages:
            assert sorted(pages.names()) == sorted(arrays)
            for name, arr in arrays.items():
                view = pages.view(name)
                assert view.dtype == arr.dtype
                assert view.shape == arr.shape
                assert np.array_equal(view, arr)
                # 64-byte alignment for every non-empty array
                if arr.nbytes:
                    address = view.__array_interface__["data"][0]
                    assert address % 64 == 0
            assert "owner" in repr(pages)

    def test_manifest_is_json_safe(self):
        with SharedIndexPages.create(_sample_arrays()) as pages:
            manifest = json.loads(json.dumps(pages.manifest()))
            assert manifest["shm_name"] == pages._shm.name
            twin = SharedIndexPages.attach(manifest)
            try:
                assert np.array_equal(
                    twin.view("weights"), pages.view("weights")
                )
            finally:
                twin.close()
            # Borrower close never unlinks: the owner still reads it.
            assert int(pages.view("weights").sum()) == sum(range(100))

    def test_close_unlinks_and_is_idempotent(self):
        pages = SharedIndexPages.create(_sample_arrays())
        name = pages._shm.name
        manifest = pages.manifest()
        pages.close()
        pages.close()  # idempotent
        assert pages.closed
        assert not os.path.exists(os.path.join(SHM_DIR, name))
        with pytest.raises(ReproError, match="closed"):
            pages.view("weights")
        with pytest.raises(ReproError, match="no longer exists"):
            SharedIndexPages.attach(manifest)

    def test_finalizer_backstop_unlinks_a_dropped_arena(self):
        pages = SharedIndexPages.create(_sample_arrays())
        name = pages._shm.name
        del pages
        gc.collect()
        assert not os.path.exists(os.path.join(SHM_DIR, name))

    def test_create_returns_none_when_shm_is_unusable(self, monkeypatch):
        def broken(*args, **kwargs):
            raise OSError("no shm here")

        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory", broken
        )
        assert SharedIndexPages.create(_sample_arrays()) is None


class TestCrossProcessAttach:
    def test_unrelated_process_attaches_by_manifest(self):
        arrays = _sample_arrays()
        with SharedIndexPages.create(arrays, label="xproc") as pages:
            child = (
                "import json, sys\n"
                "from repro.perf.shm import SharedIndexPages\n"
                "pages = SharedIndexPages.attach(json.loads(sys.argv[1]))\n"
                "print(int(pages.view('weights').sum()))\n"
                "pages.close()\n"
            )
            env = dict(os.environ, PYTHONPATH="src")
            proc = subprocess.run(
                [sys.executable, "-c", child, json.dumps(pages.manifest())],
                capture_output=True, text=True, env=env, cwd="/root/repo",
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip() == str(sum(range(100)))
            # The child's borrower-close must not have unlinked the name.
            assert np.array_equal(pages.view("weights"), arrays["weights"])


class TestIndexIntegration:
    @pytest.mark.parametrize("method", available_methods())
    def test_enable_close_roundtrip_preserves_answers(self, method):
        g = random_dag(50, avg_degree=2.0, seed=13)
        index = create_index(method, g).build()
        pairs = [
            (u, v) for u in range(g.num_vertices)
            for v in range(g.num_vertices)
        ]
        before = index.query_many(pairs)
        pages = index.enable_shared_pages()
        if pages is None:
            return  # family holds no numpy pages; fork-COW is fine
        assert index.shared_pages is pages
        assert index.enable_shared_pages() is pages  # idempotent
        assert index.query_many(pairs) == before
        index.close_shared_pages()
        index.close_shared_pages()  # idempotent
        assert index.shared_pages is None
        assert pages.closed
        assert index.query_many(pairs) == before

    def test_pool_moves_pages_before_the_fork(self):
        g = crown_graph(5)
        index = create_index("feline", g).build()
        pairs = [
            (u, v) for u in range(g.num_vertices)
            for v in range(g.num_vertices)
        ]
        truth = index.query_many(pairs)
        index.enable_search_pool(2, min_batch=1)
        try:
            assert index.shared_pages is not None, (
                "enable_search_pool must stage the arena pre-fork"
            )
            assert index.query_many(pairs) == truth
        finally:
            index.close_search_pool()
            index.close_shared_pages()

    def test_facade_shared_pages_and_context_manager(self):
        from repro import Reachability

        g = random_dag(40, avg_degree=2.0, seed=5)
        with Reachability(g, shared_pages=True) as oracle:
            pages = oracle.shared_pages
            assert pages is not None and not pages.closed
            assert oracle.reachable(0, g.num_vertices - 1) in (True, False)
        assert pages.closed  # close() ran on exit
