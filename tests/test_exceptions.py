"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DatasetError,
    GraphError,
    IndexBuildError,
    IndexNotBuiltError,
    NotADAGError,
    ReproError,
    UnknownMethodError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [
            GraphError,
            NotADAGError,
            IndexNotBuiltError,
            IndexBuildError,
            DatasetError,
            UnknownMethodError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_not_a_dag_is_graph_error(self):
        assert issubclass(NotADAGError, GraphError)

    def test_not_a_dag_carries_cycle_hint(self):
        exc = NotADAGError("cycle", cycle_hint=7)
        assert exc.cycle_hint == 7

    def test_not_a_dag_hint_optional(self):
        assert NotADAGError("cycle").cycle_hint is None

    def test_index_build_error_reason(self):
        exc = IndexBuildError("too big", reason="memory-budget")
        assert exc.reason == "memory-budget"

    def test_index_build_error_default_reason(self):
        assert IndexBuildError("boom").reason == "error"

    def test_one_catch_for_everything(self):
        with pytest.raises(ReproError):
            raise WorkloadError("no pairs")


class TestUnknownMethodError:
    def test_is_dataset_error_for_back_compat(self):
        assert issubclass(UnknownMethodError, DatasetError)

    def test_carries_method_and_known(self):
        exc = UnknownMethodError("nope", method="magic", known=["feline"])
        assert exc.method == "magic"
        assert exc.known == ["feline"]

    def test_raised_by_create_index(self):
        from repro.baselines.base import create_index
        from repro.graph.digraph import DiGraph

        with pytest.raises(UnknownMethodError) as excinfo:
            create_index("no-such-method", DiGraph(1, []))
        assert excinfo.value.method == "no-such-method"
        assert "feline" in excinfo.value.known

    def test_create_index_still_catchable_as_dataset_error(self):
        from repro.baselines.base import create_index
        from repro.graph.digraph import DiGraph

        with pytest.raises(DatasetError):
            create_index("no-such-method", DiGraph(1, []))
