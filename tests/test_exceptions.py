"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DatasetError,
    GraphError,
    IndexBuildError,
    IndexNotBuiltError,
    NotADAGError,
    ReproError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [
            GraphError,
            NotADAGError,
            IndexNotBuiltError,
            IndexBuildError,
            DatasetError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_not_a_dag_is_graph_error(self):
        assert issubclass(NotADAGError, GraphError)

    def test_not_a_dag_carries_cycle_hint(self):
        exc = NotADAGError("cycle", cycle_hint=7)
        assert exc.cycle_hint == 7

    def test_not_a_dag_hint_optional(self):
        assert NotADAGError("cycle").cycle_hint is None

    def test_index_build_error_reason(self):
        exc = IndexBuildError("too big", reason="memory-budget")
        assert exc.reason == "memory-budget"

    def test_index_build_error_default_reason(self):
        assert IndexBuildError("boom").reason == "error"

    def test_one_catch_for_everything(self):
        with pytest.raises(ReproError):
            raise WorkloadError("no pairs")
