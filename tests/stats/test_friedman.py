"""Unit tests for the Friedman test."""

import pytest
from scipy.stats import friedmanchisquare

from repro.exceptions import ReproError
from repro.stats.friedman import friedman_test, rank_within_block


class TestRanking:
    def test_simple_order(self):
        assert rank_within_block([3.0, 1.0, 2.0]) == [3.0, 1.0, 2.0]

    def test_ties_averaged(self):
        assert rank_within_block([1.0, 1.0, 2.0]) == [1.5, 1.5, 3.0]

    def test_all_tied(self):
        assert rank_within_block([5.0, 5.0, 5.0]) == [2.0, 2.0, 2.0]

    def test_single_value(self):
        assert rank_within_block([42.0]) == [1.0]

    def test_infinity_ranks_last(self):
        assert rank_within_block([1.0, float("inf"), 2.0]) == [1.0, 3.0, 2.0]


class TestFriedman:
    def test_matches_scipy(self):
        table = [
            [1.0, 2.0, 3.0],
            [1.1, 2.5, 2.9],
            [0.9, 2.2, 3.3],
            [1.3, 1.9, 3.1],
        ]
        ours = friedman_test(table)
        columns = list(zip(*table))
        reference = friedmanchisquare(*columns)
        assert ours.statistic == pytest.approx(reference.statistic)
        assert ours.p_value == pytest.approx(reference.pvalue)

    def test_clear_winner_significant(self):
        # Method 0 always best, method 2 always worst, 8 datasets.
        table = [[1.0, 2.0, 3.0] for _ in range(8)]
        result = friedman_test(table)
        assert result.significant(alpha=0.1)
        assert result.average_ranks == [1.0, 2.0, 3.0]

    def test_random_noise_not_significant(self):
        from random import Random

        rng = Random(0)
        table = [
            [rng.random() for _ in range(3)] for _ in range(6)
        ]
        result = friedman_test(table)
        # With pure noise the p-value is large virtually always for this
        # seed; assert the mechanism rather than a probabilistic law.
        assert 0.0 <= result.p_value <= 1.0

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ReproError, match="blocks"):
            friedman_test([[1.0, 2.0]])

    def test_too_few_methods_rejected(self):
        with pytest.raises(ReproError, match="methods"):
            friedman_test([[1.0], [2.0]])

    def test_ragged_table_rejected(self):
        with pytest.raises(ReproError, match="same methods"):
            friedman_test([[1.0, 2.0], [1.0]])

    def test_average_ranks_sum_invariant(self):
        table = [[4.0, 1.0, 3.0, 2.0] for _ in range(5)]
        result = friedman_test(table)
        k = result.num_methods
        assert sum(result.average_ranks) == pytest.approx(k * (k + 1) / 2)
