"""Unit tests for the Nemenyi post-hoc test and CD diagrams."""

import pytest

from repro.stats.nemenyi import (
    compute_cd_diagram,
    critical_difference,
    nemenyi_groups,
    render_cd_diagram,
)


class TestCriticalDifference:
    def test_known_value_demsar(self):
        """Demšar (2006): q_0.05 for k = 5 is 2.728, so over N = 14
        datasets CD = 2.728 · sqrt(5·6 / (6·14)) ≈ 1.63."""
        cd = critical_difference(5, 14, alpha=0.05)
        assert cd == pytest.approx(1.63, abs=0.02)

    def test_cd_shrinks_with_more_datasets(self):
        assert critical_difference(4, 50) < critical_difference(4, 5)

    def test_cd_grows_with_more_methods(self):
        assert critical_difference(6, 10) > critical_difference(3, 10)

    def test_alpha_monotone(self):
        assert critical_difference(4, 10, alpha=0.1) < critical_difference(
            4, 10, alpha=0.01
        )


class TestGroups:
    def test_all_apart_no_groups(self):
        assert nemenyi_groups([1.0, 3.0, 5.0], cd=1.5) == []

    def test_all_together_one_group(self):
        groups = nemenyi_groups([1.0, 1.2, 1.4], cd=1.0)
        assert groups == [(0, 1, 2)]

    def test_chain_of_overlapping_groups(self):
        # ranks 1, 2, 3 with cd = 1.5: {0,1} and {1,2} but not {0,1,2}.
        groups = nemenyi_groups([1.0, 2.0, 3.0], cd=1.5)
        assert (0, 1) in groups and (1, 2) in groups
        assert (0, 1, 2) not in groups

    def test_nested_groups_dropped(self):
        groups = nemenyi_groups([1.0, 1.1, 1.2, 4.0], cd=0.5)
        assert groups == [(0, 1, 2)]

    def test_unsorted_input_handled(self):
        groups = nemenyi_groups([3.0, 1.0, 1.2], cd=0.5)
        assert groups == [(1, 2)]


class TestDiagram:
    def test_compute_bundles_everything(self):
        diagram = compute_cd_diagram(
            ["A", "B", "C"], [1.0, 2.0, 2.2], num_blocks=10
        )
        assert diagram.cd > 0
        assert diagram.ordered_methods()[0] == ("A", 1.0)

    def test_render_mentions_methods_and_cd(self):
        diagram = compute_cd_diagram(
            ["FELINE", "GRAIL"], [1.0, 2.0], num_blocks=11
        )
        text = render_cd_diagram(diagram)
        assert "FELINE" in text and "GRAIL" in text
        assert "CD =" in text

    def test_render_shows_group_bars(self):
        diagram = compute_cd_diagram(
            ["A", "B", "C"], [1.0, 1.1, 3.0], num_blocks=4
        )
        text = render_cd_diagram(diagram)
        assert "=" in text  # at least one group bar
