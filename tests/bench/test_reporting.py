"""Unit tests for report rendering."""

from repro.bench.reporting import (
    format_bytes,
    format_series,
    format_table,
    render_scatter,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.500" in lines[2]

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_best_highlighted_per_row(self):
        text = format_table(
            ["graph", "m1", "m2"],
            [["g", 5.0, 3.0]],
            highlight_best=[1, 2],
        )
        assert "3.000*" in text
        assert "5.000*" not in text

    def test_none_rendered_as_fail(self):
        text = format_table(["m"], [[None]])
        assert "FAIL" in text

    def test_failures_not_highlighted(self):
        text = format_table(
            ["graph", "m1", "m2"],
            [["g", None, 7.0]],
            highlight_best=[1, 2],
        )
        assert "7.000*" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "n", [10, 20], {"FELINE": [1.0, 2.0], "GRAIL": [3.0, 4.0]}
        )
        header = text.splitlines()[0]
        assert "FELINE" in header and "GRAIL" in header
        assert "10" in text and "4.000" in text


class TestRenderScatter:
    def test_empty_points(self):
        assert "(empty)" in render_scatter([])

    def test_dimensions(self):
        points = [(i, i) for i in range(100)]
        text = render_scatter(points, width=40, height=10)
        grid_lines = [l for l in text.splitlines() if l.startswith("|")]
        assert len(grid_lines) == 10
        assert all(len(l) == 42 for l in grid_lines)

    def test_diagonal_shape(self):
        # A perfect diagonal: the top-right cell is populated, the
        # top-left cell is not.
        points = [(i, i) for i in range(100)]
        text = render_scatter(points, width=20, height=10)
        top = [l for l in text.splitlines() if l.startswith("|")][0]
        assert top[1] == " "  # top-left empty
        assert top[-2] != " "  # top-right occupied

    def test_footer_mentions_ranges(self):
        text = render_scatter([(0, 0), (5, 9)])
        assert "x: [0, 5]" in text and "y: [0, 9]" in text and "n=2" in text


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(512) == "512B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0KiB"

    def test_mib(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_none_is_fail(self):
        assert format_bytes(None) == "FAIL"
