"""Unit tests for cross-method validation and harness percentiles."""

from repro.baselines.base import ReachabilityIndex, register_index
from repro.bench.harness import MethodSpec, measure_method
from repro.bench.validate import cross_validate
from repro.datasets.queries import random_pairs
from repro.graph.generators import random_dag


class TestCrossValidate:
    def test_all_methods_agree(self):
        g = random_dag(80, avg_degree=2.0, seed=1)
        report = cross_validate(g, random_pairs(g, 300, seed=2))
        assert report.ok
        assert "ALL AGREE" in report.summary()
        assert len(report.methods_checked) == 5

    def test_budget_failures_become_skips(self):
        g = random_dag(200, avg_degree=4.0, seed=3)
        report = cross_validate(
            g,
            random_pairs(g, 50, seed=4),
            methods=("feline", "interval"),
            method_params={"interval": {"memory_budget_bytes": 100}},
        )
        assert report.methods_skipped == {"interval": "memory-budget"}
        assert report.methods_checked == ["feline"]
        assert report.ok

    def test_buggy_method_is_caught(self):
        class LyingIndex(ReachabilityIndex):
            method_name = "liar-test"

            def _build(self):
                pass

            def _query(self, u, v):
                return True  # everything reachable: wrong

            def index_size_bytes(self):
                return 0

        register_index(LyingIndex)
        g = random_dag(40, avg_degree=1.0, seed=5)
        report = cross_validate(
            g, random_pairs(g, 100, seed=6), methods=("liar-test",)
        )
        assert not report.ok
        assert report.disagreements
        assert report.disagreements[0].method == "liar-test"
        assert "DISAGREEMENTS" in report.summary()


class TestPercentiles:
    def test_percentiles_filled_on_demand(self):
        g = random_dag(150, avg_degree=2.0, seed=7)
        pairs = random_pairs(g, 400, seed=8)
        result = measure_method(
            g, MethodSpec("feline"), pairs, runs=1, percentiles=True
        )
        assert result.query_p50_us is not None
        assert result.query_p50_us <= result.query_p95_us <= result.query_p99_us

    def test_percentiles_absent_by_default(self):
        g = random_dag(50, avg_degree=2.0, seed=9)
        result = measure_method(
            g, MethodSpec("feline"), random_pairs(g, 50, seed=0), runs=1
        )
        assert result.query_p50_us is None

    def test_percentiles_skip_failed_builds(self):
        g = random_dag(100, avg_degree=2.0, seed=1)
        result = measure_method(
            g,
            MethodSpec("tc", params={"memory_budget_bytes": 1}),
            random_pairs(g, 10, seed=2),
            runs=1,
            percentiles=True,
        )
        assert not result.ok
        assert result.query_p50_us is None
