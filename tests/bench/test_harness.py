"""Unit tests for the measurement harness."""

from repro.bench.harness import MethodSpec, measure_method, run_sweep
from repro.datasets.queries import random_pairs
from repro.graph.generators import random_dag


def _graph(seed=0):
    g = random_dag(100, avg_degree=2.0, seed=seed)
    g.name = f"test-{seed}"
    return g


class TestMethodSpec:
    def test_display_defaults_to_method(self):
        assert MethodSpec("feline").display == "feline"

    def test_display_uses_label(self):
        assert MethodSpec("feline", "FELINE").display == "FELINE"


class TestMeasureMethod:
    def test_successful_measurement(self):
        g = _graph()
        pairs = random_pairs(g, 100, seed=1)
        result = measure_method(g, MethodSpec("feline"), pairs, runs=2)
        assert result.ok
        assert result.construction_ms is not None and result.construction_ms > 0
        assert result.query_ms is not None and result.query_ms >= 0
        assert result.index_bytes is not None and result.index_bytes > 0
        assert result.num_queries == 100
        assert 0 <= result.positives <= 100

    def test_failure_recorded_not_raised(self):
        g = _graph()
        pairs = random_pairs(g, 10, seed=1)
        spec = MethodSpec("tc", params={"memory_budget_bytes": 1})
        result = measure_method(g, spec, pairs)
        assert not result.ok
        assert result.failure == "memory-budget"
        assert result.construction_ms is None
        assert result.query_ms is None

    def test_answers_consistent_across_methods(self):
        g = _graph(3)
        pairs = random_pairs(g, 300, seed=2)
        feline = measure_method(g, MethodSpec("feline"), pairs, runs=1)
        grail = measure_method(g, MethodSpec("grail"), pairs, runs=1)
        assert feline.positives == grail.positives

    def test_runs_floor_at_one(self):
        g = _graph()
        result = measure_method(
            g, MethodSpec("feline"), random_pairs(g, 10, seed=0), runs=0
        )
        assert result.ok


class TestRunSweep:
    def test_cartesian_product(self):
        graphs = [_graph(1), _graph(2)]
        specs = [MethodSpec("feline"), MethodSpec("dfs")]
        pairs = {
            g.name: random_pairs(g, 50, seed=0) for g in graphs
        }
        results = run_sweep(graphs, specs, pairs, runs=1)
        assert len(results) == 4
        assert {(r.dataset, r.method) for r in results} == {
            ("test-1", "feline"), ("test-1", "dfs"),
            ("test-2", "feline"), ("test-2", "dfs"),
        }
