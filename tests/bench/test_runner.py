"""Unit tests for the per-experiment drivers (tiny sizes)."""

import pytest

from repro.bench import runner

SMALL = ["arxiv", "yago", "go"]
TINY_KW = dict(names=SMALL, scale=0.02, num_queries=60, runs=1)


class TestTables:
    def test_table1_report(self):
        report = runner.table1_datasets(scale=0.02, diameter_sample_size=8)
        assert report.experiment_id == "T1"
        assert "arxiv" in report.text and "uniprot150m" in report.text
        assert len(report.data["summaries"]) == 11

    def test_table2_report(self):
        report = runner.table2_synthetic(scale=0.0002)
        assert report.experiment_id == "T2"
        assert "100M-10" in report.text
        assert report.data["sizes"]["10M"][0] == 2000

    def test_table3_report(self):
        report = runner.table3_real(**TINY_KW)
        assert "construction times" in report.text
        assert "query times" in report.text
        assert "FELINE" in report.text
        results = report.data["results"]
        assert len(results) == len(SMALL) * 5

    def test_table4_report(self):
        report = runner.table4_feline_variants(**TINY_KW)
        assert "FELINE-I" in report.text and "FELINE-B" in report.text

    def test_table5_report(self):
        report = runner.table5_scarab(**TINY_KW)
        assert "FELINE-SCAR" in report.text and "GRAIL-SCAR" in report.text


class TestFigures:
    def test_fig10_cd(self):
        report = runner.fig10_cd_construction(
            names=["arxiv", "yago", "go", "pubmed"], scale=0.02,
            num_queries=40, runs=1,
        )
        assert "Friedman" in report.text and "CD =" in report.text

    def test_fig11_cd(self):
        report = runner.fig11_cd_query(
            names=["arxiv", "yago", "go", "pubmed"], scale=0.02,
            num_queries=40, runs=1,
        )
        assert report.experiment_id == "F11"

    def test_fig12_scatter(self):
        report = runner.fig12_index_plots(
            names=("arxiv", "go"), scale=0.02
        )
        assert "arxiv (normal index)" in report.text
        assert "go (reversed index)" in report.text
        points = report.data["coordinates"][("arxiv", "normal")]
        assert len(points) == 120  # 6000 * 0.02

    def test_fig13_series(self):
        report = runner.fig13_synthetic_construction(
            names=["10M", "20M"], scale=0.0002, num_queries=40, runs=1
        )
        assert "10M" in report.text and "FELINE" in report.text

    def test_fig14_includes_feline_b(self):
        report = runner.fig14_synthetic_query(
            names=["10M", "20M"], scale=0.0002, num_queries=40, runs=1
        )
        assert "FELINE-B" in report.text

    def test_fig15_sizes(self):
        report = runner.fig15_index_sizes_real(**TINY_KW)
        assert "GRAIL-d5" in report.text

    def test_fig16_sizes(self):
        report = runner.fig16_index_sizes_synthetic(
            names=["10M", "20M"], scale=0.0002
        )
        assert report.experiment_id == "F16"

    def test_fig17_cd(self):
        report = runner.fig17_cd_scarab(
            names=["arxiv", "yago", "go", "pubmed"], scale=0.02,
            num_queries=40, runs=1,
        )
        assert "CD =" in report.text


class TestAblations:
    def test_heuristic_ablation(self):
        report = runner.ablation_y_heuristics(
            names=SMALL, scale=0.02, num_queries=60, runs=1
        )
        assert "FELINE[max-x]" in report.text
        assert "FELINE[min-x]" in report.text

    def test_filter_ablation(self):
        report = runner.ablation_filters(
            names=SMALL, scale=0.02, num_queries=60, runs=1
        )
        assert "FELINE[bare]" in report.text


class TestReportStr:
    def test_str_includes_header(self):
        report = runner.table2_synthetic(scale=0.0002)
        assert str(report).startswith("== T2:")


class TestCDFromResultsFailureHandling:
    def test_failures_rank_worst(self):
        from repro.bench.harness import MethodResult
        from repro.bench.runner import _cd_from_results

        results = []
        for dataset in ("g1", "g2", "g3"):
            results.append(MethodResult(
                method="A", dataset=dataset, num_queries=10,
                construction_ms=1.0, query_ms=1.0,
            ))
            results.append(MethodResult(
                method="B", dataset=dataset, num_queries=10,
                failure="memory-budget",
            ))
        report = _cd_from_results(
            results, ["A", "B"], "query", "X", "test title"
        )
        friedman = report.data["friedman"]
        # A always ranks 1, the failing B always ranks 2.
        assert friedman.average_ranks == [1.0, 2.0]
        assert report.data["results"] is results
