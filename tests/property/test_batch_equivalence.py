"""Property tests (hypothesis): batch API equivalence and stats invariants.

Two contracts the batch-first API redesign must never break:

* ``Reachability.reachable_many(pairs)`` is extensionally equal to the
  scalar ``reachable`` loop, for every method — including FELINE, whose
  ``_query_many`` takes the vectorized numpy-cut path rather than the
  scalar loop;
* after *any* workload, scalar or batch, every query was answered by
  exactly one mechanism: ``queries == equal_cuts + negative_cuts +
  positive_cuts + searches``.
"""

from hypothesis import given, settings

import repro
from repro.core.query import FelineIndex

from tests.property.test_invariants import dags

METHODS = ["feline", "feline-b", "grail"]


def _all_pairs(n: int) -> list[tuple[int, int]]:
    return [(u, v) for u in range(n) for v in range(n)]


class TestReachableManyEquivalence:
    @given(dags(max_vertices=14))
    @settings(max_examples=25, deadline=None)
    def test_feline(self, g):
        self._check(g, "feline")

    @given(dags(max_vertices=14))
    @settings(max_examples=25, deadline=None)
    def test_feline_b(self, g):
        self._check(g, "feline-b")

    @given(dags(max_vertices=12))
    @settings(max_examples=20, deadline=None)
    def test_grail(self, g):
        self._check(g, "grail", num_labelings=2, seed=1)

    def _check(self, g, method, **params):
        oracle = repro.Reachability(g, method=method, **params)
        pairs = _all_pairs(g.num_vertices)
        batch = oracle.reachable_many(pairs)
        scalar = [oracle.reachable(u, v) for u, v in pairs]
        assert batch == scalar


class TestQueryStatsInvariant:
    @given(dags(max_vertices=14))
    @settings(max_examples=25, deadline=None)
    def test_scalar_workload(self, g):
        for method in METHODS:
            oracle = repro.Reachability(g, method=method)
            for u, v in _all_pairs(g.num_vertices):
                oracle.reachable(u, v)
            self._check_invariant(oracle.stats)

    @given(dags(max_vertices=14))
    @settings(max_examples=25, deadline=None)
    def test_batch_workload(self, g):
        for method in METHODS:
            oracle = repro.Reachability(g, method=method)
            oracle.reachable_many(_all_pairs(g.num_vertices))
            self._check_invariant(oracle.stats)

    @given(dags(max_vertices=12))
    @settings(max_examples=20, deadline=None)
    def test_mixed_workload(self, g):
        oracle = repro.Reachability(g)
        pairs = _all_pairs(g.num_vertices)
        oracle.reachable_many(pairs)
        for u, v in pairs[: len(pairs) // 2]:
            oracle.reachable(u, v)
        oracle.reachable_many(pairs[::3])
        self._check_invariant(oracle.stats)

    def _check_invariant(self, stats):
        assert stats.queries == (
            stats.equal_cuts
            + stats.negative_cuts
            + stats.positive_cuts
            + stats.searches
        ), stats.as_dict()


class TestVectorizedDispatch:
    def test_feline_query_many_uses_numpy_cuts(self):
        """The facade's batch path must hit the vectorized implementation."""
        from repro.graph.generators import random_dag

        g = random_dag(80, avg_degree=2.0, seed=3)
        index = FelineIndex(g).build()
        calls = []
        original = index._search

        def spying_search(u, v, *bounds):
            calls.append((u, v))
            return original(u, v, *bounds)

        index._search = spying_search
        pairs = [(u, (u + 5) % 80) for u in range(80)]
        answers = index.query_many(pairs)
        # the vectorized path only reaches _search for cut survivors
        assert len(calls) == index.stats.searches < len(pairs)
        assert answers == [
            FelineIndex(g).build().query(u, v) for u, v in pairs
        ]
