"""Property tests: an attached ObserverLayer never changes any answer.

The observer pre-pass (:mod:`repro.perf.observers`) is pure deduction
from exact reachability data, so its contract is threefold, for every
registered index family:

* **answer equivalence** — ``query_many`` (and the scalar loop) with
  observers attached returns exactly what the same family answers
  without them, with and without a survivor-search pool, and under a
  per-query budget (an observer verdict is an O(1) cut: it can never be
  budget-degraded into UNKNOWN);
* **scalar ≡ batch** — with observers attached, the batch engine stays
  bit-identical to the scalar loop, counters included;
* **explain honesty** — when the layer decides a pair, ``explain``
  reports ``observer-positive`` / ``observer-negative`` and never
  attributes the verdict to the family's own cut.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import available_methods, create_index
from repro.graph.generators import crown_graph, random_dag
from repro.perf.observers import build_observers
from repro.resilience import UNKNOWN, QueryBudget

from tests.property.test_invariants import dags
from tests.property.test_query_many_engine import SEARCHING_METHODS


def _all_pairs(n: int) -> list[tuple[int, int]]:
    return [(u, v) for u in range(n) for v in range(n)]


def _assert_observer_equivalent(method, g, pairs, k=8, workers=0, **params):
    """observer-on ≡ observer-off answers, and scalar ≡ batch with
    observers attached (stats included)."""
    plain = create_index(method, g, **params).build()
    batch_index = create_index(method, g, **params).build()
    scalar_index = create_index(method, g, **params).build()
    layer = build_observers(g, k=k)
    batch_index.attach_observers(layer)
    scalar_index.attach_observers(layer)
    if workers > 1:
        batch_index.enable_search_pool(workers, min_batch=1)
    try:
        batch = batch_index.query_many(pairs)
    finally:
        batch_index.close_search_pool()
    assert batch == plain.query_many(pairs)
    scalar = [scalar_index.query(u, v) for u, v in pairs]
    assert batch == scalar
    assert batch_index.stats.as_dict() == scalar_index.stats.as_dict()


class TestEveryRegisteredMethod:
    @pytest.mark.parametrize("method", available_methods())
    @pytest.mark.parametrize("k", [0, 8])
    def test_random_dag(self, method, k):
        g = random_dag(60, avg_degree=2.0, seed=11)
        _assert_observer_equivalent(
            method, g, _all_pairs(g.num_vertices), k=k
        )

    @pytest.mark.parametrize("method", SEARCHING_METHODS)
    def test_crown_graph(self, method):
        g = crown_graph(5)
        _assert_observer_equivalent(method, g, _all_pairs(g.num_vertices))


class TestWithSearchPool:
    @pytest.mark.parametrize("method", ["feline", "grail", "bfs"])
    def test_pooled_crown_graph(self, method):
        g = crown_graph(5)
        _assert_observer_equivalent(
            method, g, _all_pairs(g.num_vertices), workers=2
        )


class TestWithBudgets:
    @pytest.mark.parametrize("method", ["feline", "grail"])
    def test_budgeted_answers_match_or_degrade(self, method):
        # A pair the observers decide is O(1): it must survive even a
        # 1-step budget; pairs the budget degrades stay UNKNOWN, never
        # a wrong boolean.
        g = crown_graph(6)
        plain = create_index(method, g).build()
        observed = create_index(method, g).build()
        observed.attach_observers(build_observers(g, k=12))
        budget = QueryBudget(max_steps=1, policy="unknown")
        pairs = _all_pairs(g.num_vertices)
        truth = plain.query_many(pairs)
        answers = observed.query_many(pairs, budget=budget)
        decided = 0
        for (u, v), answer, exact in zip(pairs, answers, truth):
            if answer is not UNKNOWN:
                assert answer == exact
            if u != v and observed.observers.decide(u, v) is not None:
                assert answer is not UNKNOWN, (
                    f"observer-decided pair {(u, v)} was budget-degraded"
                )
                decided += 1
        assert decided > 0


class TestExplainHonesty:
    @given(g=dags(max_vertices=12))
    @settings(max_examples=20, deadline=None)
    def test_observer_cuts_reported_truthfully(self, g):
        index = create_index("feline", g).build()
        index.attach_observers(build_observers(g, k=4))
        twin = create_index("feline", g).build()
        twin.attach_observers(index.observers)
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                explanation = index.explain(u, v)
                assert explanation.verdict == twin.query(u, v)
                verdict = (
                    None if u == v else index.observers.decide(u, v)
                )
                if verdict is None:
                    assert not explanation.cut.startswith("observer"), (
                        f"({u},{v}): cut {explanation.cut} claimed "
                        "without an observer verdict"
                    )
                else:
                    expected = (
                        "observer-positive" if verdict
                        else "observer-negative"
                    )
                    assert explanation.cut == expected, (
                        f"({u},{v}): observer decided {verdict} but "
                        f"explain said {explanation.cut}"
                    )
                    # k clamps to num_vertices on tiny graphs
                    assert (
                        explanation.details["observers(k)"]
                        == index.observers.k
                    )

    @pytest.mark.parametrize(
        "method", ["feline", "feline-b", "feline-i", "grail"]
    )
    def test_family_details_never_overwrite_observer_cut(self, method):
        g = random_dag(50, avg_degree=2.5, seed=21)
        index = create_index(method, g).build()
        index.attach_observers(build_observers(g, k=8))
        seen = set()
        for u, v in _all_pairs(g.num_vertices):
            explanation = index.explain(u, v)
            if explanation.cut.startswith("observer"):
                seen.add(explanation.cut)
                # Family refinements ("negative-cut" → "level-filter",
                # interval details, ...) must leave the cut untouched.
                assert explanation.expanded == 0
                assert explanation.pruned == 0
        assert seen, f"{method}: observers never fired on this workload"


class TestEquivalenceProperty:
    @given(g=dags(max_vertices=12), k=st.integers(0, 6))
    @settings(max_examples=15, deadline=None)
    def test_feline_family(self, g, k):
        pairs = _all_pairs(g.num_vertices)
        for method in ("feline", "feline-i", "feline-b"):
            _assert_observer_equivalent(method, g, pairs, k=k)

    @given(g=dags(max_vertices=10))
    @settings(max_examples=8, deadline=None)
    def test_label_families(self, g):
        pairs = _all_pairs(g.num_vertices)
        _assert_observer_equivalent(
            "grail", g, pairs, num_labelings=2, seed=1
        )
        _assert_observer_equivalent("ferrari", g, pairs)
        _assert_observer_equivalent("tf-label", g, pairs)
