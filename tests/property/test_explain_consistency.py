"""Property: ``explain(u, v)`` is a faithful account of ``query(u, v)``.

Two halves, both over random DAGs:

* **verdict consistency** — for every registered method,
  ``explain(u, v).verdict`` equals what ``query(u, v)`` returns on a
  twin index (the explanation must never change the answer);
* **cut honesty** — the FELINE explanation's claimed cut actually
  applies: a ``negative-cut`` pair really violates coordinate dominance,
  a ``level-filter`` pair dominates but fails the level test, a
  ``positive-cut`` pair is inside the spanning-tree interval, ``search``
  really expanded vertices, and ``equal`` only fires for ``u == v``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import create_index
from repro.obs.explain import CUTS

from tests.property.test_invariants import dags

METHODS = [
    "feline",
    "feline-i",
    "feline-b",
    "feline-k",
    "grail",
    "ferrari",
    "tf-label",
    "dfs",
    "bfs",
    "bibfs",
    "interval",
    "dual-labeling",
    "chain-cover",
    "tc",
    "scarab",
]


class TestVerdictConsistency:
    @given(g=dags(max_vertices=14), method=st.sampled_from(METHODS))
    @settings(max_examples=40, deadline=None)
    def test_explain_agrees_with_query(self, g, method):
        explained = create_index(method, g).build()
        queried = create_index(method, g).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                explanation = explained.explain(u, v)
                assert explanation.cut in CUTS
                assert explanation.verdict == queried.query(u, v), (
                    f"{method}: explain({u},{v}) said "
                    f"{explanation.verdict} ({explanation.cut}) but query "
                    f"said {queried.query(u, v)}"
                )


class TestFelineCutHonesty:
    @given(g=dags(max_vertices=16))
    @settings(max_examples=50, deadline=None)
    def test_claimed_cut_applies(self, g):
        index = create_index("feline", g).build()
        coords = index.coordinates
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                exp = index.explain(u, v)
                if exp.cut == "equal":
                    assert u == v
                elif exp.cut == "negative-cut":
                    assert exp.verdict is False
                    assert not coords.dominates(u, v)
                    assert exp.details["dominates"] is False
                elif exp.cut == "level-filter":
                    assert exp.verdict is False
                    assert coords.dominates(u, v)
                    assert coords.levels[u] >= coords.levels[v]
                elif exp.cut == "positive-cut":
                    assert exp.verdict is True
                    assert coords.tree_intervals.contains(u, v)
                else:
                    assert exp.cut == "search"
                    assert exp.expanded >= 1

    @given(g=dags(max_vertices=16))
    @settings(max_examples=30, deadline=None)
    def test_grail_negative_cut_means_non_containment(self, g):
        index = create_index("grail", g).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                exp = index.explain(u, v)
                if exp.cut == "negative-cut":
                    assert not index._contains_all(u, v)
                elif exp.cut == "level-filter":
                    assert index._contains_all(u, v)
                    assert index.levels[u] >= index.levels[v]
