"""Property: a budgeted query never returns a wrong boolean.

The resilience contract (see ``repro.resilience.budget``): under any
budget and any policy, the only thing that may replace an exact answer is
``UNKNOWN`` (or a raised ``QueryBudgetExceeded``).  Booleans are always
equal to the ground-truth oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import create_index
from repro.exceptions import QueryBudgetExceeded
from repro.graph.transitive import transitive_closure_bitsets
from repro.resilience import UNKNOWN, QueryBudget

from tests.property.test_invariants import dags

METHODS = ["feline", "feline-i", "feline-b", "grail", "ferrari", "bibfs"]


def budgets():
    return st.builds(
        QueryBudget,
        max_steps=st.integers(min_value=1, max_value=12),
        policy=st.sampled_from(["unknown", "fallback"]),
        fallback_nodes=st.integers(min_value=1, max_value=12),
    )


class TestBudgetedAnswersAreSound:
    @given(
        g=dags(max_vertices=18),
        budget=budgets(),
        method=st.sampled_from(METHODS),
    )
    @settings(max_examples=60, deadline=None)
    def test_boolean_answers_match_oracle(self, g, budget, method):
        index = create_index(method, g).build()
        closure = transitive_closure_bitsets(g)
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                answer = index.query(u, v, budget=budget)
                assert answer is True or answer is False or answer is UNKNOWN
                if answer is not UNKNOWN:
                    expected = bool((closure[u] >> v) & 1)
                    assert answer == expected, (
                        f"{method} with {budget} answered {answer} for "
                        f"r({u}, {v}), oracle says {expected}"
                    )

    @given(g=dags(max_vertices=16), max_steps=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_raise_policy_never_lies(self, g, max_steps):
        index = create_index(
            "feline", g, use_level_filter=False, use_positive_cut=False
        ).build()
        closure = transitive_closure_bitsets(g)
        budget = QueryBudget(max_steps=max_steps, policy="raise")
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                try:
                    answer = index.query(u, v, budget=budget)
                except QueryBudgetExceeded:
                    continue  # allowed: no answer at all
                assert answer == bool((closure[u] >> v) & 1)

    @given(g=dags(max_vertices=14), budget=budgets())
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar(self, g, budget):
        index = create_index("feline", g).build()
        n = g.num_vertices
        pairs = [(u, v) for u in range(n) for v in range(n)]
        batch = index.query_many(pairs, budget=budget)
        for (u, v), answer in zip(pairs, batch):
            assert answer is index.query(u, v, budget=budget) or (
                answer == index.query(u, v, budget=budget)
            )
