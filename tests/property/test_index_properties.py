"""Property-based tests over whole indexes (hypothesis)."""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.chain_cover import (
    ChainCoverIndex,
    greedy_chain_decomposition,
)
from repro.baselines.grail import GrailIndex
from repro.core.analysis import dominance_pair_count
from repro.core.bidirectional import FelineBIndex
from repro.core.index import build_feline_index
from repro.graph.digraph import DiGraph
from repro.graph.transitive import count_reachable_pairs
from repro.graph.traversal import dfs_reachable

from tests.property.test_invariants import dags


class TestDominanceIdentity:
    @given(dags(max_vertices=20))
    @settings(max_examples=40, deadline=None)
    def test_dominance_counts_reachable_plus_false_positives(self, g):
        coords = build_feline_index(
            g, with_level_filter=False, with_positive_cut=False
        )
        from repro.core.analysis import count_false_positives

        assert dominance_pair_count(coords) == count_reachable_pairs(
            g
        ) + count_false_positives(g, coords)


class TestChainCoverProperties:
    @given(dags(max_vertices=18))
    @settings(max_examples=40, deadline=None)
    def test_query_matches_dfs(self, g):
        index = ChainCoverIndex(g).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert index.query(u, v) == dfs_reachable(g, u, v)

    @given(dags(max_vertices=20))
    @settings(max_examples=40, deadline=None)
    def test_chain_count_at_most_vertices(self, g):
        _, _, k = greedy_chain_decomposition(g)
        assert 0 <= k <= g.num_vertices
        if g.num_vertices:
            assert k >= 1


class TestGrailProperties:
    @given(dags(max_vertices=16), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_containment_necessary_for_reachability(self, g, d):
        index = GrailIndex(g, num_labelings=d, seed=7).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                if dfs_reachable(g, u, v):
                    assert index._contains_all(u, v)

    @given(dags(max_vertices=14))
    @settings(max_examples=25, deadline=None)
    def test_query_matches_dfs(self, g):
        index = GrailIndex(g, num_labelings=2, seed=1).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert index.query(u, v) == dfs_reachable(g, u, v)


class TestFelineBProperties:
    @given(dags(max_vertices=14))
    @settings(max_examples=25, deadline=None)
    def test_query_matches_dfs(self, g):
        index = FelineBIndex(g).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert index.query(u, v) == dfs_reachable(g, u, v)

    @given(dags(max_vertices=16))
    @settings(max_examples=25, deadline=None)
    def test_both_dominance_directions_necessary(self, g):
        index = FelineBIndex(g).build()
        fwd, bwd = index.forward, index.backward
        for u, v in g.edges():
            assert fwd.x[u] <= fwd.x[v] and fwd.y[u] <= fwd.y[v]
            assert bwd.x[v] <= bwd.x[u] and bwd.y[v] <= bwd.y[u]


class TestEdgeStreamEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_incremental_equals_static_for_any_insertion_order(self, seed):
        from repro.core.incremental import IncrementalFelineIndex
        from repro.graph.generators import random_dag

        g = random_dag(25, avg_degree=2.0, seed=seed % 50)
        edges = list(g.edges())
        Random(seed).shuffle(edges)
        index = IncrementalFelineIndex(DiGraph(25, []))
        for u, v in edges:
            index.add_edge(u, v)
        for u in range(25):
            for v in range(25):
                assert index.query(u, v) == dfs_reachable(g, u, v)
