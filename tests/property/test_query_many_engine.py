"""Property tests: the vectorized batch engine ≡ the scalar path.

The batch engine (:mod:`repro.perf.engine`) answers ``query_many``
through each family's materialized :class:`~repro.perf.cut_table.CutTable`
plus a scalar survivor fallback.  Its contract is *bit-identical*
equivalence: for every registered method, ``query_many(pairs)`` must
return exactly ``[query(u, v) for u, v in pairs]`` AND leave every
:class:`~repro.baselines.base.QueryStats` counter equal to the scalar
run's — with and without a survivor-search pool attached.
"""

import pytest
from hypothesis import given, settings

from repro.baselines.base import available_methods, create_index
from repro.graph.generators import crown_graph, random_dag

from tests.property.test_invariants import dags

# Methods whose scalar _query can reach an online search; crown graphs
# defeat their O(1) cuts, so the pooled path genuinely dispatches.
# SCARAB is handled separately: its survivor search is the backbone
# gateway product, which needs paths of length >= 2 (a crown graph has
# none, so its cuts decide everything there).
SEARCHING_METHODS = [
    "bfs", "bibfs", "dfs", "feline", "feline-b", "feline-i", "feline-k",
    "ferrari", "grail",
]


def _deep_dag():
    """A random DAG with multi-hop paths (exercises SCARAB's product)."""
    return random_dag(40, avg_degree=2.5, seed=13)


def _mixed_pairs(n: int) -> list[tuple[int, int]]:
    """A deterministic workload mixing hits, misses and equal pairs."""
    pairs = [(u, (u * 7 + 3) % n) for u in range(n)]
    pairs += [(v, u) for u, v in pairs[: n // 2]]
    pairs += [(u, u) for u in range(0, n, 3)]
    return pairs


def _all_pairs(n: int) -> list[tuple[int, int]]:
    return [(u, v) for u in range(n) for v in range(n)]


def _assert_equivalent(method, g, pairs, workers=0, **params):
    batch_index = create_index(method, g, **params).build()
    scalar_index = create_index(method, g, **params).build()
    assert batch_index._cut_table is not None, (
        f"{method} declares no cut table — the vectorized engine is bypassed"
    )
    if workers > 1:
        batch_index.enable_search_pool(workers, min_batch=1)
    try:
        batch = batch_index.query_many(pairs)
    finally:
        batch_index.close_search_pool()
    scalar = [scalar_index.query(u, v) for u, v in pairs]
    assert batch == scalar
    assert batch_index.stats.as_dict() == scalar_index.stats.as_dict()


class TestEveryRegisteredMethod:
    """query_many ≡ scalar loop for the full registry, fixed workloads."""

    @pytest.mark.parametrize("method", available_methods())
    def test_random_dag(self, method):
        g = random_dag(60, avg_degree=2.0, seed=11)
        _assert_equivalent(method, g, _mixed_pairs(g.num_vertices))

    @pytest.mark.parametrize("method", SEARCHING_METHODS)
    def test_crown_graph_forces_searches(self, method):
        # Crown graphs defeat the cuts: the survivor fallback runs.
        g = crown_graph(6)
        index = create_index(method, g).build()
        pairs = _all_pairs(g.num_vertices)
        _assert_equivalent(method, g, pairs)
        index.query_many(pairs)
        assert index.stats.searches > 0

    def test_scarab_gateway_product_survivors(self):
        g = _deep_dag()
        pairs = _all_pairs(g.num_vertices)
        _assert_equivalent("scarab", g, pairs)
        index = create_index("scarab", g).build()
        index.query_many(pairs)
        assert index.stats.searches > 0

    @pytest.mark.parametrize("method", available_methods())
    def test_empty_batch(self, method):
        g = random_dag(20, avg_degree=1.5, seed=2)
        index = create_index(method, g).build()
        assert index.query_many([]) == []
        assert index.stats.queries == 0


class TestEveryRegisteredMethodWithPool:
    """Same contract with a 2-worker survivor pool (min_batch=1, so any
    survivor set dispatches).  Pools fork after build(); answers and the
    parent-side stats (searches counted by the engine, expanded/pruned
    merged from worker deltas) must stay bit-identical."""

    @pytest.mark.parametrize("method", SEARCHING_METHODS)
    def test_pooled_crown_graph(self, method):
        g = crown_graph(5)
        _assert_equivalent(method, g, _all_pairs(g.num_vertices), workers=2)

    def test_pooled_scarab(self):
        g = _deep_dag()
        _assert_equivalent(
            "scarab", g, _all_pairs(g.num_vertices), workers=2
        )

    @pytest.mark.parametrize("method", ["feline", "grail"])
    def test_pooled_random_dag(self, method):
        g = random_dag(80, avg_degree=2.0, seed=5)
        _assert_equivalent(method, g, _mixed_pairs(g.num_vertices), workers=2)


class TestEngineEquivalenceProperty:
    """Hypothesis sweep: all pairs of random DAGs, core families."""

    @given(dags(max_vertices=12))
    @settings(max_examples=15, deadline=None)
    def test_feline_family(self, g):
        pairs = _all_pairs(g.num_vertices)
        for method in ("feline", "feline-i", "feline-b"):
            _assert_equivalent(method, g, pairs)

    @given(dags(max_vertices=10))
    @settings(max_examples=10, deadline=None)
    def test_label_families(self, g):
        pairs = _all_pairs(g.num_vertices)
        _assert_equivalent("grail", g, pairs, num_labelings=2, seed=1)
        _assert_equivalent("ferrari", g, pairs)
        _assert_equivalent("tf-label", g, pairs)

    @given(dags(max_vertices=10))
    @settings(max_examples=8, deadline=None)
    def test_feline_pooled(self, g):
        _assert_equivalent(
            "feline", g, _all_pairs(g.num_vertices), workers=2
        )
