"""Property-based tests (hypothesis) for the library's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import pwah
from repro.baselines.ferrari import merge_interval_lists, restrict_to_budget
from repro.baselines.interval import union_intervals
from repro.core.index import build_feline_index
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.graph.scc import condense, is_dag
from repro.graph.toposort import is_topological_order, kahn_order
from repro.graph.traversal import dfs_reachable
from repro.stats.friedman import rank_within_block


# ---------------------------------------------------------------------------
# Graph strategies
# ---------------------------------------------------------------------------
@st.composite
def dags(draw, max_vertices=24):
    """Random DAGs: edges always go from a smaller to a larger id."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    if n < 2:
        return DiGraph(n, [])
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 2), st.integers(1, n - 1)
            ).map(lambda p: (min(p), max(p)))
            .filter(lambda p: p[0] != p[1]),
            max_size=3 * n,
            unique=True,
        )
    )
    return DiGraph(n, edges)


@st.composite
def digraphs(draw, max_vertices=16):
    """Arbitrary digraphs (cycles allowed, no self loops)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=3 * n,
            unique=True,
        )
    )
    return DiGraph(n, edges)


@st.composite
def interval_lists(draw):
    """Sorted disjoint non-adjacent [lo, hi] interval lists."""
    points = draw(
        st.lists(st.integers(0, 400), min_size=0, max_size=12, unique=True)
    )
    points.sort()
    intervals = []
    i = 0
    while i + 1 < len(points):
        lo, hi = points[i], points[i + 1]
        if intervals and lo <= intervals[-1][1] + 1:
            i += 1
            continue
        intervals.append((lo, hi))
        i += 2
    return intervals


# ---------------------------------------------------------------------------
# FELINE invariants
# ---------------------------------------------------------------------------
class TestFelineInvariants:
    @given(dags())
    @settings(max_examples=60, deadline=None)
    def test_theorem1_reachability_implies_dominance(self, g):
        coords = build_feline_index(
            g, with_level_filter=False, with_positive_cut=False
        )
        for u, v in g.edges():
            assert coords.dominates(u, v)

    @given(dags())
    @settings(max_examples=40, deadline=None)
    def test_coordinates_are_permutations(self, g):
        coords = build_feline_index(g)
        n = g.num_vertices
        assert sorted(coords.x) == list(range(n))
        assert sorted(coords.y) == list(range(n))

    @given(dags(max_vertices=14))
    @settings(max_examples=30, deadline=None)
    def test_feline_query_matches_dfs(self, g):
        from repro.core.query import FelineIndex

        index = FelineIndex(g).build()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert index.query(u, v) == dfs_reachable(g, u, v)


# ---------------------------------------------------------------------------
# Substrate invariants
# ---------------------------------------------------------------------------
class TestSubstrateInvariants:
    @given(dags())
    @settings(max_examples=60, deadline=None)
    def test_kahn_produces_topological_order(self, g):
        assert is_topological_order(g, kahn_order(g))

    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_condensation_always_dag(self, g):
        assert is_dag(condense(g).dag)

    @given(digraphs(max_vertices=10))
    @settings(max_examples=30, deadline=None)
    def test_condensation_preserves_reachability(self, g):
        result = condense(g)
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert dfs_reachable(g, u, v) == dfs_reachable(
                    result.dag, result.scc_of[u], result.scc_of[v]
                )

    @given(dags())
    @settings(max_examples=60, deadline=None)
    def test_levels_strictly_increase_along_edges(self, g):
        levels = compute_levels(g)
        for u, v in g.edges():
            assert levels[u] < levels[v]


# ---------------------------------------------------------------------------
# Compression invariants
# ---------------------------------------------------------------------------
class TestCompressionInvariants:
    @given(interval_lists(), st.integers(401, 600))
    @settings(max_examples=80, deadline=None)
    def test_pwah_round_trip(self, intervals, universe):
        words = pwah.compress_intervals(intervals, universe=universe)
        assert pwah.decompress_to_intervals(words) == intervals

    @given(interval_lists(), st.integers(401, 600))
    @settings(max_examples=40, deadline=None)
    def test_pwah_membership(self, intervals, universe):
        words = pwah.compress_intervals(intervals, universe=universe)
        bits = {
            p for lo, hi in intervals for p in range(lo, hi + 1)
        }
        for probe in range(0, universe, 7):
            assert pwah.contains(words, probe) == (probe in bits)

    @given(st.lists(interval_lists(), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_union_intervals_is_set_union(self, lists):
        merged = union_intervals(lists)
        expected = set()
        for lst in lists:
            for lo, hi in lst:
                expected.update(range(lo, hi + 1))
        got = set()
        for lo, hi in merged:
            assert lo <= hi
            got.update(range(lo, hi + 1))
        assert got == expected
        # Result is sorted, disjoint and non-adjacent.
        for (alo, ahi), (blo, bhi) in zip(merged, merged[1:]):
            assert ahi + 1 < blo

    @given(st.lists(interval_lists(), max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_ferrari_merge_covers_union(self, lists):
        flagged = [
            [(lo, hi, True) for lo, hi in lst] for lst in lists
        ]
        merged = merge_interval_lists(flagged)
        expected = set()
        for lst in lists:
            for lo, hi in lst:
                expected.update(range(lo, hi + 1))
        got = set()
        for lo, hi, _ in merged:
            got.update(range(lo, hi + 1))
        assert got == expected

    @given(interval_lists(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_budget_restriction_never_loses_coverage(self, intervals, budget):
        flagged = [(lo, hi, True) for lo, hi in intervals]
        restricted = restrict_to_budget(flagged, budget)
        assert len(restricted) <= max(budget, len(flagged) and 1)
        before = {
            p for lo, hi in intervals for p in range(lo, hi + 1)
        }
        after = set()
        for lo, hi, _ in restricted:
            after.update(range(lo, hi + 1))
        assert before <= after  # merging only ever widens


# ---------------------------------------------------------------------------
# Statistics invariants
# ---------------------------------------------------------------------------
class TestStatsInvariants:
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_ranks_sum_to_triangular_number(self, values):
        ranks = rank_within_block(values)
        k = len(values)
        assert abs(sum(ranks) - k * (k + 1) / 2) < 1e-9

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_ranks_respect_order(self, values):
        ranks = rank_within_block(values)
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] < values[j]:
                    assert ranks[i] < ranks[j]
