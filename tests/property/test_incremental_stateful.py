"""Stateful property test: the incremental FELINE vs a naive mirror.

Hypothesis drives an arbitrary interleaving of vertex insertions, edge
insertions (including attempts that would close cycles) and queries; a
naive edge-list mirror provides ground truth via DFS.  After every step
the index must agree with the mirror and keep its internal invariants.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.incremental import IncrementalFelineIndex
from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import dfs_reachable


class IncrementalFelineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = IncrementalFelineIndex()
        self.index.add_vertex()  # always at least one vertex
        self.edges: list[tuple[int, int]] = []

    def _snapshot(self) -> DiGraph:
        return DiGraph(self.index.num_vertices, self.edges)

    @rule()
    def add_vertex(self):
        self.index.add_vertex()

    @precondition(lambda self: self.index.num_vertices >= 2)
    @rule(data=st.data())
    def add_edge(self, data):
        n = self.index.num_vertices
        u = data.draw(st.integers(0, n - 1), label="u")
        v = data.draw(st.integers(0, n - 1), label="v")
        snapshot = self._snapshot()
        creates_cycle = u == v or dfs_reachable(snapshot, v, u)
        if creates_cycle:
            try:
                self.index.add_edge(u, v)
            except NotADAGError:
                pass  # expected: rejected, state must be unchanged
            else:
                raise AssertionError(
                    f"cycle-closing edge ({u}, {v}) was accepted"
                )
        else:
            self.index.add_edge(u, v)
            self.edges.append((u, v))

    @precondition(lambda self: self.index.num_vertices >= 2)
    @rule(data=st.data())
    def query(self, data):
        n = self.index.num_vertices
        u = data.draw(st.integers(0, n - 1), label="qu")
        v = data.draw(st.integers(0, n - 1), label="qv")
        expected = dfs_reachable(self._snapshot(), u, v)
        assert self.index.query(u, v) == expected

    @invariant()
    def internal_invariants_hold(self):
        assert self.index.check_invariants()

    @invariant()
    def counters_match_mirror(self):
        assert self.index.num_edges == len(self.edges)


TestIncrementalFelineStateful = IncrementalFelineMachine.TestCase
TestIncrementalFelineStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
