"""Property tests: every search-kernel backend is bit-identical to python.

The contract of :mod:`repro.perf.kernels` is that backend selection is
*unobservable* except in speed: for every registered index family, the
``numpy`` and ``numba`` tiers return exactly the answers **and** the
:class:`~repro.baselines.base.QueryStats` counters of the families'
original pure-Python loops — scalar and batch paths, with and without
observers, with and without a survivor-search pool, and under every
budget policy (step budgets are enforced inside the kernels; a
deadline-carrying guard routes to the python loop, so it is trivially
identical).

The ``numba`` cells run the real compiled tier when numba is installed
(the CI ``with-numba`` job) and otherwise an *interpreted* stand-in —
the exact ``@njit``-targeted kernel bodies executed by CPython — so the
compiled code paths are exercised on every machine.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.base import available_methods, create_index
from repro.exceptions import QueryBudgetExceeded
from repro.graph.generators import crown_graph, random_dag
from repro.perf import kernels
from repro.perf.observers import build_observers
from repro.resilience import QueryBudget

from tests.property.test_invariants import dags
from tests.property.test_query_many_engine import SEARCHING_METHODS


def _install_interpreted_native(monkeypatch) -> None:
    """Make ``resolve_backend("numba")`` succeed without numba installed.

    Runs the ``@njit``-targeted kernel bodies interpreted — same code,
    same arrays, same arithmetic — so every numba-tier code path is
    covered even where the compiler is absent.
    """
    monkeypatch.setattr(
        kernels, "_native", kernels._compile_tier(lambda f: f)
    )
    monkeypatch.setattr(kernels, "_numba_checked", True)
    monkeypatch.setattr(kernels, "_NUMBA_VERSION", "interpreted")


@pytest.fixture(params=["numpy", "numba"])
def backend(request, monkeypatch):
    """Each native tier; ``numba`` falls back to the interpreted stand-in."""
    if request.param == "numba" and not kernels.numba_available():
        _install_interpreted_native(monkeypatch)
    return request.param


def _all_pairs(n: int) -> list[tuple[int, int]]:
    return [(u, v) for u in range(n) for v in range(n)]


def _build(method, g, backend, **params):
    index = create_index(method, g, **params)
    index.set_kernel(backend)
    return index.build()


def _assert_bit_identical(
    method, g, pairs, backend, workers=0, observers=0, **params
):
    """Native batch + scalar ≡ python batch + scalar, stats included."""
    python = _build(method, g, "python", **params)
    native = _build(method, g, backend, **params)
    if observers:
        layer = build_observers(g, k=observers)
        python.attach_observers(layer)
        native.attach_observers(layer)
    if workers > 1:
        native.enable_search_pool(workers, min_batch=1)
    try:
        batch = native.query_many(pairs)
    finally:
        native.close_search_pool()
        native.close_shared_pages()
    assert batch == python.query_many(pairs)
    assert native.stats.as_dict() == python.stats.as_dict()
    python.stats.reset()
    native.stats.reset()
    scalar_native = [native.query(u, v) for u, v in pairs]
    scalar_python = [python.query(u, v) for u, v in pairs]
    assert scalar_native == scalar_python == batch
    assert native.stats.as_dict() == python.stats.as_dict()


class TestEveryRegisteredMethod:
    @pytest.mark.parametrize("method", available_methods())
    def test_random_dag(self, method, backend):
        g = random_dag(60, avg_degree=2.0, seed=11)
        _assert_bit_identical(
            method, g, _all_pairs(g.num_vertices), backend
        )

    @pytest.mark.parametrize("method", SEARCHING_METHODS)
    def test_crown_graph(self, method, backend):
        # The worst case for cuts: every cross pair survives to search.
        g = crown_graph(5)
        _assert_bit_identical(
            method, g, _all_pairs(g.num_vertices), backend
        )


class TestWithObserversAndPool:
    @pytest.mark.parametrize("method", ["feline", "feline-b", "bibfs"])
    def test_observers_attached(self, method, backend):
        g = random_dag(50, avg_degree=2.5, seed=7)
        _assert_bit_identical(
            method, g, _all_pairs(g.num_vertices), backend, observers=8
        )

    @pytest.mark.parametrize("method", ["feline", "feline-i"])
    def test_pooled(self, method, backend):
        g = crown_graph(5)
        _assert_bit_identical(
            method, g, _all_pairs(g.num_vertices), backend, workers=2
        )


class TestBudgets:
    @pytest.mark.parametrize("method", ["feline", "feline-b", "bibfs"])
    @pytest.mark.parametrize("policy", ["unknown", "fallback"])
    def test_step_budget_bit_identical(self, method, policy, backend):
        # The budget strikes mid-search on crown graphs; the kernels
        # must bail at exactly the vertex where SearchGuard.step would
        # have, so degradations (and their counters) line up.
        g = crown_graph(6)
        pairs = _all_pairs(g.num_vertices)
        python = _build(method, g, "python")
        native = _build(method, g, backend)
        budget = QueryBudget(max_steps=3, policy=policy)
        assert native.query_many(pairs, budget=budget) == python.query_many(
            pairs, budget=budget
        )
        assert native.stats.as_dict() == python.stats.as_dict()

    @pytest.mark.parametrize("method", ["feline", "bibfs"])
    def test_raise_policy_raises_identically(self, method, backend):
        g = crown_graph(6)
        python = _build(method, g, "python")
        native = _build(method, g, backend)

        def outcome(index, pair):
            try:
                budget = QueryBudget(max_steps=3, policy="raise")
                return ("answer", index.query_many([pair], budget=budget))
            except QueryBudgetExceeded:
                return ("raised", None)

        for pair in _all_pairs(g.num_vertices):
            assert outcome(native, pair) == outcome(python, pair)

    @pytest.mark.parametrize("method", ["feline", "bibfs"])
    def test_deadline_guard_routes_to_python(self, method, backend):
        # Wall-clock deadlines cannot be enforced bit-identically from a
        # compiled loop, so deadline-carrying guards take the python
        # path — slower, never wrong, still identical.
        g = crown_graph(6)
        pairs = _all_pairs(g.num_vertices)
        python = _build(method, g, "python")
        native = _build(method, g, backend)
        budget = QueryBudget(max_steps=5, deadline_s=60.0, policy="unknown")
        assert native.query_many(pairs, budget=budget) == python.query_many(
            pairs, budget=budget
        )
        assert native.stats.as_dict() == python.stats.as_dict()


class TestEquivalenceProperty:
    @given(g=dags(max_vertices=12))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_feline_family(self, g, backend):
        pairs = _all_pairs(g.num_vertices)
        for method in ("feline", "feline-i", "feline-b"):
            _assert_bit_identical(method, g, pairs, backend)

    @given(g=dags(max_vertices=10))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_bibfs_and_label_families(self, g, backend):
        pairs = _all_pairs(g.num_vertices)
        _assert_bit_identical("bibfs", g, pairs, backend)
        _assert_bit_identical("grail", g, pairs, backend,
                              num_labelings=2, seed=1)
