"""Property tests: coalesced HTTP answers ≡ per-request scalar answers.

The serving tier's core contract — acceptance criterion of the async
tier PR: a pair answered through the coalescer (batched into one
``query_many`` call with whatever else was in flight) is **bit-identical**
to issuing that query alone on a fresh oracle.  Checked:

* across random DAGs and concurrent request mixes;
* with a budget attached, where degraded answers must be ``unknown`` on
  exactly the pairs the scalar budgeted path degrades on (never a wrong
  ``True``/``False``) — deterministic because step budgets (not
  wall-clock deadlines) are used;
* with a :class:`~repro.perf.SearchPool` attached to the serving oracle;
* across a graceful drain, where every admitted request still receives
  a real answer (the no-drop half of the shutdown contract).
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.request import Request, urlopen

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.obs.metrics import MetricsRegistry
from repro.resilience import UNKNOWN, QueryBudget
from repro.serve import ReachServer, ServeConfig

from tests.property.test_invariants import dags


def serve_answers(oracle, pairs, config=None, client_threads=4):
    """Answer ``pairs`` through a live server, concurrently, via HTTP."""
    config = config or ServeConfig(max_batch=8, max_wait_ms=1.0)
    answers = [None] * len(pairs)
    with ReachServer(oracle, config, registry=MetricsRegistry()) as server:
        url = server.url

        def fetch(slot):
            u, v = pairs[slot]
            with urlopen(f"{url}/reach?u={u}&v={v}", timeout=10) as response:
                answers[slot] = json.loads(response.read())["answer"]

        with ThreadPoolExecutor(max_workers=client_threads) as pool:
            list(pool.map(fetch, range(len(pairs))))
    return answers


def scalar_truth(graph, pairs, budget=None):
    """Per-request answers from a fresh oracle, JSON-safe form."""
    oracle = repro.Reachability(graph)
    out = []
    for u, v in pairs:
        answer = oracle.reachable(u, v, budget=budget)
        out.append(None if answer is UNKNOWN else bool(answer))
    return out


def graph_pairs(g, limit=40):
    n = g.num_vertices
    return [(u, v) for u in range(n) for v in range(n)][:limit]


class TestCoalescedEqualsScalar:
    @given(dags(max_vertices=10))
    @settings(max_examples=10, deadline=None)
    def test_exact_answers(self, g):
        pairs = graph_pairs(g)
        served = serve_answers(repro.Reachability(g), pairs)
        assert served == scalar_truth(g, pairs)

    @given(dags(max_vertices=10), st.integers(min_value=1, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_budgeted_answers_degrade_identically(self, g, steps):
        # Step budgets are deterministic (unlike deadlines), so the
        # batched path must degrade on exactly the same pairs.
        budget = QueryBudget(max_steps=steps, policy="unknown")
        pairs = graph_pairs(g)
        served = serve_answers(
            repro.Reachability(g), pairs,
            config=ServeConfig(max_batch=8, max_wait_ms=1.0, budget=budget),
        )
        expected = scalar_truth(g, pairs, budget=budget)
        assert served == expected
        # Soundness: where an answer was given, it is the exact answer.
        exact = scalar_truth(g, pairs)
        for got, truth in zip(served, exact):
            if got is not None:
                assert got is truth


class TestWithSearchPool:
    def test_pooled_oracle_serves_identical_answers(self):
        from repro.graph.generators import random_dag

        g = random_dag(300, avg_degree=2.0, seed=11)
        oracle = repro.Reachability(g, workers=2)
        try:
            pairs = [
                ((i * 17) % 300, (i * 31 + 5) % 300) for i in range(60)
            ]
            served = serve_answers(
                oracle, pairs, config=ServeConfig(max_batch=32, max_wait_ms=2.0)
            )
            assert served == scalar_truth(g, pairs)
        finally:
            oracle.close_search_pool()


class TestDrainNoDrop:
    def test_no_request_dropped_without_structured_response(self):
        """Kill the server mid-traffic: every client gets either a real
        answer or a structured error body — never a bare dropped socket
        for an admitted request."""
        from repro.graph.generators import random_dag

        g = random_dag(100, avg_degree=2.0, seed=7)
        oracle = repro.Reachability(g)
        exact = {
            (u, v): scalar_truth(g, [(u, v)])[0]
            for u in range(0, 100, 7) for v in range(0, 100, 13)
        }
        server = ReachServer(
            oracle,
            ServeConfig(max_batch=16, max_wait_ms=5.0, drain_timeout_s=10),
            registry=MetricsRegistry(),
        )
        server.start()
        url = server.url
        outcomes = []
        lock = threading.Lock()
        stop_firing = threading.Event()

        def client(pairs):
            for u, v in pairs:
                if stop_firing.is_set():
                    return
                try:
                    request = Request(f"{url}/reach?u={u}&v={v}")
                    with urlopen(request, timeout=10) as response:
                        doc = json.loads(response.read())
                    with lock:
                        outcomes.append(("answer", u, v, doc["answer"]))
                except Exception as exc:  # noqa: BLE001 — classified below
                    status = getattr(exc, "code", None)
                    body = {}
                    if hasattr(exc, "read"):
                        try:
                            body = json.loads(exc.read())
                        except Exception:  # noqa: BLE001
                            body = {}
                    with lock:
                        outcomes.append(("error", status, body, exc))

        keys = list(exact)
        threads = [
            threading.Thread(target=client, args=(keys[i::4],))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # let traffic build up mid-flight
        server.stop()     # graceful drain
        stop_firing.set()
        for thread in threads:
            thread.join(timeout=15)

        answered = [o for o in outcomes if o[0] == "answer"]
        errored = [o for o in outcomes if o[0] == "error"]
        assert answered, "drain test produced no completed requests"
        # Every completed answer is exact — drained batches included.
        for _, u, v, answer in answered:
            assert answer == exact[(u, v)], (u, v)
        # Every error is a *structured* refusal from the teardown window
        # (503 + JSON body), or a connection-level failure from a socket
        # that never got admitted (fires after the listener closed).
        for _, status, body, exc in errored:
            if status is not None:
                assert status == 503
                assert body.get("error") in {"draining", "overloaded"}
            else:
                assert isinstance(exc, (ConnectionError, OSError)), exc
