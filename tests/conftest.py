"""Shared fixtures and helpers for the whole test suite."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    complete_dag,
    crown_graph,
    diamond_graph,
    layered_dag,
    ontology_dag,
    path_graph,
    random_dag,
    tree_like_dag,
)
from repro.graph.transitive import transitive_closure_bitsets

# ---------------------------------------------------------------------------
# Reference graphs
# ---------------------------------------------------------------------------
# The paper's Figure 2 DAG: vertices a..h = 0..7.
#   a -> c, a -> d;  c -> e;  d -> e;  e -> h;  b -> f, b -> g;  f -> h
# (Reconstructed from the §3.2 prose — the figure image is not part of
# the text; the reconstruction is consistent with the worked example's
# X ordering, roots {a, b}, and Y prefix {b, g, f}.)
PAPER_FIG2_EDGES = [
    (0, 2), (0, 3), (2, 4), (3, 4), (4, 7), (1, 5), (1, 6), (5, 7),
]


@pytest.fixture
def paper_dag() -> DiGraph:
    """The small DAG from the paper's Figure 2 (8 vertices)."""
    return DiGraph(8, PAPER_FIG2_EDGES, name="paper-fig2")


@pytest.fixture
def diamond() -> DiGraph:
    return diamond_graph()


def dag_zoo() -> list[DiGraph]:
    """A diverse set of DAGs for cross-method agreement tests."""
    return [
        DiGraph(1, [], name="single"),
        DiGraph(3, [], name="edgeless"),
        path_graph(12),
        diamond_graph(),
        DiGraph(8, PAPER_FIG2_EDGES, name="paper-fig2"),
        crown_graph(3),
        crown_graph(5),
        complete_dag(8),
        layered_dag(5, 6, edge_probability=0.4, seed=3),
        random_dag(60, avg_degree=1.0, seed=1),
        random_dag(80, avg_degree=3.0, seed=2),
        tree_like_dag(70, extra_edge_fraction=0.1, seed=4),
        ontology_dag(60, num_roots=3, seed=5),
        citation_dag(50, avg_out_degree=3.0, seed=6),
        tree_like_dag(40, seed=7).reversed(),
    ]


def dag_ids() -> list[str]:
    return [g.name for g in dag_zoo()]


@pytest.fixture(params=dag_zoo(), ids=dag_ids())
def any_dag(request) -> DiGraph:
    """Parametrized over the whole DAG zoo."""
    return request.param


# ---------------------------------------------------------------------------
# Ground-truth helpers
# ---------------------------------------------------------------------------
def reachability_oracle(graph: DiGraph):
    """An exact ``r(u, v)`` callable from the transitive closure."""
    closure = transitive_closure_bitsets(graph)

    def oracle(u: int, v: int) -> bool:
        return bool((closure[u] >> v) & 1)

    return oracle


def all_pairs(graph: DiGraph) -> list[tuple[int, int]]:
    """Every ordered vertex pair (for exhaustive small-graph checks)."""
    n = graph.num_vertices
    return [(u, v) for u in range(n) for v in range(n)]


def assert_index_matches_oracle(index, graph: DiGraph, pairs=None) -> None:
    """Assert a built index answers every pair like the exact oracle."""
    oracle = reachability_oracle(graph)
    pairs = pairs if pairs is not None else all_pairs(graph)
    for u, v in pairs:
        expected = oracle(u, v)
        actual = index.query(u, v)
        assert actual == expected, (
            f"{index.method_name} wrong on r({u}, {v}) in {graph.name}: "
            f"got {actual}, expected {expected}"
        )
