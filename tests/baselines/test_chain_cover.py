"""Unit tests for the chain-cover baseline."""

import pytest

from repro.baselines.chain_cover import (
    ChainCoverIndex,
    greedy_chain_decomposition,
)
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_dag,
    crown_graph,
    path_graph,
    random_dag,
)

from tests.conftest import assert_index_matches_oracle


class TestDecomposition:
    def test_chains_partition_vertices(self, any_dag):
        chain_of, position_of, k = greedy_chain_decomposition(any_dag)
        n = any_dag.num_vertices
        assert all(0 <= chain_of[v] < max(k, 1) for v in range(n))
        # Positions within a chain are unique and start at 0.
        chains: dict[int, list[int]] = {}
        for v in range(n):
            chains.setdefault(chain_of[v], []).append(position_of[v])
        for positions in chains.values():
            assert sorted(positions) == list(range(len(positions)))

    def test_chains_follow_edges(self, any_dag):
        """Consecutive positions on a chain must be a real edge."""
        chain_of, position_of, k = greedy_chain_decomposition(any_dag)
        n = any_dag.num_vertices
        by_slot = {
            (chain_of[v], position_of[v]): v for v in range(n)
        }
        for (chain, position), v in by_slot.items():
            successor = by_slot.get((chain, position + 1))
            if successor is not None:
                assert any_dag.has_edge(v, successor)

    def test_path_is_one_chain(self):
        _, _, k = greedy_chain_decomposition(path_graph(20))
        assert k == 1

    def test_antichain_needs_n_chains(self):
        _, _, k = greedy_chain_decomposition(DiGraph(5, []))
        assert k == 5

    def test_crown_chain_count_bounded_by_width(self):
        # Crown S0_k has width k, so at least k chains are needed.
        _, _, k = greedy_chain_decomposition(crown_graph(4))
        assert k >= 4


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = ChainCoverIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_self_sufficient(self, paper_dag):
        index = ChainCoverIndex(paper_dag).build()
        for u in range(8):
            for v in range(8):
                index.query(u, v)
        assert index.stats.searches == 0

    def test_random_dags(self):
        for seed in range(3):
            g = random_dag(70, avg_degree=2.5, seed=seed)
            assert_index_matches_oracle(ChainCoverIndex(g).build(), g)


class TestShape:
    def test_path_index_is_tiny(self):
        index = ChainCoverIndex(path_graph(100)).build()
        # One chain: the matrix is a single column.
        assert index.num_chains == 1
        assert index.index_size_bytes() < 100 * 32

    def test_wide_graph_matrix_grows(self):
        narrow = ChainCoverIndex(path_graph(64)).build()
        wide = ChainCoverIndex(complete_dag(12)).build()  # still narrow
        antichain = ChainCoverIndex(DiGraph(64, [])).build()
        assert antichain.num_chains == 64
        assert antichain.index_size_bytes() > narrow.index_size_bytes()
        assert wide.num_chains == 1  # complete DAG peels into one chain

    def test_memory_budget(self):
        g = DiGraph(300, [])  # 300 chains -> 300x300 matrix
        index = ChainCoverIndex(g, memory_budget_bytes=1000)
        with pytest.raises(IndexBuildError) as excinfo:
            index.build()
        assert excinfo.value.reason == "memory-budget"
