"""Unit tests for the TF-Label baseline."""

from array import array

import pytest

from repro.baselines.tflabel import TFLabelIndex, fold_rounds
from repro.exceptions import IndexBuildError
from repro.graph.generators import path_graph, random_dag

from tests.conftest import assert_index_matches_oracle


class TestFoldRounds:
    def test_empty(self):
        assert fold_rounds(array("l", [])) == []

    def test_roots_get_highest_round(self):
        levels = array("l", [0, 1, 2, 3, 4])
        rounds = fold_rounds(levels)
        assert rounds[0] == max(rounds)

    def test_valuation_formula(self):
        levels = array("l", [1, 2, 3, 4, 6, 8, 12])
        assert fold_rounds(levels) == [0, 1, 0, 2, 1, 3, 2][: len(levels)]

    def test_odd_levels_fold_first(self):
        levels = array("l", [1, 3, 5, 7])
        assert fold_rounds(levels) == [0, 0, 0, 0]


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = TFLabelIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_self_sufficient_no_searches(self, paper_dag):
        index = TFLabelIndex(paper_dag).build()
        for u in range(8):
            for v in range(8):
                index.query(u, v)
        assert index.stats.searches == 0

    def test_labels_sorted_ascending(self):
        g = random_dag(100, avg_degree=2.0, seed=1)
        index = TFLabelIndex(g).build()
        for labels in index.label_out + index.label_in:
            assert list(labels) == sorted(labels)


class TestLabelShape:
    def test_path_labels_stay_small(self):
        """Pruning must keep a path's labels near-constant, not linear."""
        index = TFLabelIndex(path_graph(256)).build()
        assert index.average_label_size() < 20

    def test_average_label_size_empty_graph(self):
        from repro.graph.digraph import DiGraph

        index = TFLabelIndex(DiGraph(0, [])).build()
        assert index.average_label_size() == 0.0

    def test_index_size_counts_entries(self):
        g = random_dag(50, avg_degree=2.0, seed=2)
        index = TFLabelIndex(g).build()
        entries = sum(len(l) for l in index.label_out)
        entries += sum(len(l) for l in index.label_in)
        assert index.index_size_bytes() == 8 * entries


class TestBudget:
    def test_label_budget_failure(self):
        g = random_dag(500, avg_degree=3.0, seed=3)
        index = TFLabelIndex(g, label_budget_entries=50)
        with pytest.raises(IndexBuildError) as excinfo:
            index.build()
        assert excinfo.value.reason == "label-budget"

    def test_generous_budget_builds(self, paper_dag):
        index = TFLabelIndex(paper_dag, label_budget_entries=10**9).build()
        assert index.built
