"""Unit tests for the index interface and factory."""

import pytest

from repro.baselines.base import (
    QueryStats,
    ReachabilityIndex,
    available_methods,
    create_index,
    register_index,
)
from repro.exceptions import DatasetError, IndexNotBuiltError


class TestRegistry:
    def test_all_builtins_registered(self):
        expected = {
            "dfs", "bfs", "bibfs", "tc", "grail", "ferrari", "interval",
            "tf-label", "feline", "feline-i", "feline-b", "scarab",
        }
        assert expected <= set(available_methods())

    def test_create_index_unknown_method(self, paper_dag):
        with pytest.raises(DatasetError, match="unknown reachability method"):
            create_index("nope", paper_dag)

    def test_create_index_passes_params(self, paper_dag):
        index = create_index("grail", paper_dag, num_labelings=5)
        assert index.num_labelings == 5

    def test_register_rejects_missing_name(self):
        class Nameless(ReachabilityIndex):
            def _build(self):
                pass

            def _query(self, u, v):
                return False

            def index_size_bytes(self):
                return 0

        with pytest.raises(ValueError):
            register_index(Nameless)

    def test_register_with_explicit_name(self, paper_dag):
        class Custom(ReachabilityIndex):
            method_name = "custom-test"

            def _build(self):
                pass

            def _query(self, u, v):
                return u == v

            def index_size_bytes(self):
                return 0

        register_index(Custom)
        index = create_index("custom-test", paper_dag).build()
        assert index.query(1, 1) and not index.query(0, 1)


class TestQueryStats:
    def test_initial_zero(self):
        stats = QueryStats()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_reset(self):
        stats = QueryStats(queries=5, negative_cuts=3, expanded=10)
        stats.reset()
        assert stats.queries == 0
        assert stats.negative_cuts == 0
        assert stats.expanded == 0

    def test_as_dict_keys(self):
        keys = set(QueryStats().as_dict())
        assert keys == {
            "queries", "equal_cuts", "negative_cuts", "positive_cuts",
            "observer_positive", "observer_negative",
            "searches", "expanded", "pruned",
            "budget_exhausted", "fallbacks", "unknowns",
        }


class TestLifecycleGuards:
    @pytest.mark.parametrize("method", ["feline", "grail", "ferrari", "tc"])
    def test_query_before_build(self, paper_dag, method):
        index = create_index(method, paper_dag)
        with pytest.raises(IndexNotBuiltError):
            index.query(0, 1)

    def test_query_many_counts_stats(self, paper_dag):
        index = create_index("dfs", paper_dag).build()
        answers = index.query_many([(0, 7), (7, 0), (3, 3)])
        assert answers == [True, False, True]
        assert index.stats.queries == 3
