"""Unit tests for the Dual-Labeling baseline."""

import pytest

from repro.baselines.dual_labeling import DualLabelingIndex
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    crown_graph,
    path_graph,
    random_dag,
    tree_like_dag,
)

from tests.conftest import assert_index_matches_oracle


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = DualLabelingIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_pure_tree_has_no_links(self):
        index = DualLabelingIndex(tree_like_dag(200, seed=1)).build()
        assert index.num_links == 0

    def test_path_answers_via_tree_alone(self):
        index = DualLabelingIndex(path_graph(30)).build()
        assert index.query(0, 29)
        assert not index.query(29, 0)
        assert index.num_links == 0

    def test_crown_is_all_links(self):
        # Crown S0_k: the spanning forest takes one edge per source; the
        # rest are links.
        g = crown_graph(5)
        index = DualLabelingIndex(g).build()
        assert index.num_links == g.num_edges - 5
        assert_index_matches_oracle(index, g)

    def test_multi_hop_link_chains(self):
        # u ->tree a, link (a,b), tree b->c, link (c,d), tree d->v:
        # exercises the transitive part of the link closure.
        g = DiGraph(8, [
            (0, 1),          # tree: u -> a
            (2, 3),          # tree: b -> c
            (4, 5),          # tree: d -> v
            (1, 2),          # link or tree depending on DFS: a -> b
            (3, 4),          # c -> d
            (6, 7),          # unrelated component
        ])
        index = DualLabelingIndex(g).build()
        assert_index_matches_oracle(index, g)

    def test_self_sufficient_no_searches(self, paper_dag):
        index = DualLabelingIndex(paper_dag).build()
        for u in range(8):
            for v in range(8):
                index.query(u, v)
        assert index.stats.searches == 0

    def test_random_dags(self):
        for seed in range(4):
            g = random_dag(60, avg_degree=2.5, seed=seed)
            assert_index_matches_oracle(DualLabelingIndex(g).build(), g)


class TestBudget:
    def test_link_budget_failure(self):
        g = random_dag(200, avg_degree=5.0, seed=1)
        index = DualLabelingIndex(g, link_budget=10)
        with pytest.raises(IndexBuildError) as excinfo:
            index.build()
        assert excinfo.value.reason == "link-budget"

    def test_generous_budget_builds(self, paper_dag):
        index = DualLabelingIndex(paper_dag, link_budget=10**6).build()
        assert index.built


class TestShape:
    def test_sparse_graph_small_index(self):
        """On near-trees the index is essentially the tree labels."""
        g = tree_like_dag(500, extra_edge_fraction=0.02, seed=2)
        index = DualLabelingIndex(g).build()
        assert index.num_links <= 12  # ~2% of 500, minus tree-covered
        assert index.index_size_bytes() < 500 * 40

    def test_link_count_bounded_by_edges(self, any_dag):
        index = DualLabelingIndex(any_dag).build()
        assert 0 <= index.num_links <= any_dag.num_edges
