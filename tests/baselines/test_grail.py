"""Unit tests for the GRAIL baseline."""

import pytest

from repro.baselines.grail import GrailIndex
from repro.graph.generators import crown_graph, path_graph, random_dag

from tests.conftest import all_pairs, assert_index_matches_oracle


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = GrailIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_any_labeling_count_correct(self, d):
        g = random_dag(80, avg_degree=2.5, seed=1)
        index = GrailIndex(g, num_labelings=d).build()
        assert_index_matches_oracle(index, g)

    def test_without_filters_correct(self, any_dag):
        index = GrailIndex(
            any_dag, use_level_filter=False, use_positive_cut=False
        ).build()
        assert_index_matches_oracle(index, any_dag)

    def test_invalid_labeling_count_rejected(self, paper_dag):
        with pytest.raises(ValueError):
            GrailIndex(paper_dag, num_labelings=0)


class TestIndexShape:
    def test_index_grows_with_d(self):
        g = random_dag(200, avg_degree=2.0, seed=2)
        d3 = GrailIndex(g, num_labelings=3).build().index_size_bytes()
        d5 = GrailIndex(g, num_labelings=5).build().index_size_bytes()
        assert d5 > d3

    def test_seed_controls_labelings(self):
        g = random_dag(100, avg_degree=2.0, seed=3)
        a = GrailIndex(g, seed=1).build()
        b = GrailIndex(g, seed=1).build()
        c = GrailIndex(g, seed=2).build()
        assert [list(l.post) for l in a.labelings] == [
            list(l.post) for l in b.labelings
        ]
        assert [list(l.post) for l in a.labelings] != [
            list(l.post) for l in c.labelings
        ]

    def test_labelings_within_index_differ(self):
        g = random_dag(150, avg_degree=2.0, seed=4)
        index = GrailIndex(g, num_labelings=3, seed=0).build()
        posts = [tuple(l.post) for l in index.labelings]
        assert len(set(posts)) > 1


class TestBehaviour:
    def test_more_labelings_cut_no_fewer_queries(self):
        """Extra labelings only tighten the negative cut."""
        g = random_dag(150, avg_degree=2.0, seed=5)
        pairs = all_pairs(g)[:8000]
        d1 = GrailIndex(g, num_labelings=1, seed=0).build()
        d4 = GrailIndex(g, num_labelings=4, seed=0).build()
        d1.query_many(pairs)
        d4.query_many(pairs)
        assert d4.stats.negative_cuts >= d1.stats.negative_cuts

    def test_positive_cut_on_path(self):
        index = GrailIndex(path_graph(12)).build()
        assert index.query(0, 11)
        assert index.stats.searches == 0

    def test_crown_forces_searches(self):
        g = crown_graph(6)
        index = GrailIndex(
            g, num_labelings=2, use_positive_cut=False
        ).build()
        index.query_many(all_pairs(g))
        assert index.stats.searches > 0
