"""Unit tests for Nuutila's INTERVAL baseline."""

import pytest

from repro.baselines.interval import NuutilaIntervalIndex, union_intervals
from repro.baselines import pwah
from repro.exceptions import IndexBuildError
from repro.graph.generators import path_graph, random_dag

from tests.conftest import assert_index_matches_oracle


class TestUnionIntervals:
    def test_empty(self):
        assert union_intervals([]) == []

    def test_disjoint_kept(self):
        assert union_intervals([[(0, 1)], [(5, 6)]]) == [(0, 1), (5, 6)]

    def test_adjacent_coalesced(self):
        assert union_intervals([[(0, 2)], [(3, 4)]]) == [(0, 4)]

    def test_overlap_coalesced(self):
        assert union_intervals([[(0, 5)], [(3, 9)]]) == [(0, 9)]

    def test_contained_absorbed(self):
        assert union_intervals([[(0, 9)], [(3, 4)]]) == [(0, 9)]

    def test_many_lists(self):
        lists = [[(0, 0)], [(2, 2)], [(1, 1)], [(10, 12)]]
        assert union_intervals(lists) == [(0, 2), (10, 12)]


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = NuutilaIntervalIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_without_pwah_correct(self, any_dag):
        index = NuutilaIntervalIndex(any_dag, compress_with_pwah=False).build()
        assert_index_matches_oracle(index, any_dag)

    def test_self_sufficient_no_search_counters(self, paper_dag):
        """Every query resolves from the index alone: no graph search."""
        index = NuutilaIntervalIndex(paper_dag).build()
        for u in range(8):
            for v in range(8):
                index.query(u, v)
        assert index.stats.searches == 0


class TestCompression:
    def test_subtree_compresses_to_single_interval(self):
        """On a path, every closure is one contiguous interval."""
        index = NuutilaIntervalIndex(path_graph(50)).build()
        assert index.num_intervals() == 50

    def test_pwah_streams_match_interval_lists(self):
        g = random_dag(80, avg_degree=2.0, seed=1)
        index = NuutilaIntervalIndex(g).build()
        for v in range(80):
            decoded = pwah.decompress_to_intervals(index.pwah_words[v])
            expected = list(
                zip(index.lists_lo[v], index.lists_hi[v])
            )
            assert decoded == expected

    def test_pwah_beats_uncompressed_bitmaps(self):
        """PWAH's win is against raw closure bitmaps (|V|²/8 bytes)."""
        n = 1000
        g = path_graph(n)
        index = NuutilaIntervalIndex(g, compress_with_pwah=True).build()
        raw_bitmap_bytes = n * n // 8
        assert index.index_size_bytes() < raw_bitmap_bytes

    def test_size_reported_for_both_modes(self, paper_dag):
        with_pwah = NuutilaIntervalIndex(
            paper_dag, compress_with_pwah=True
        ).build()
        without = NuutilaIntervalIndex(
            paper_dag, compress_with_pwah=False
        ).build()
        assert with_pwah.index_size_bytes() > 0
        assert without.index_size_bytes() > 0


class TestMemoryBudget:
    def test_budget_failure_reproduces_paper_behaviour(self):
        """The paper: INTERVAL 'failed with these datasets' on large dense
        graphs — the budget makes that deterministic."""
        g = random_dag(2000, avg_degree=5.0, seed=2)
        index = NuutilaIntervalIndex(g, memory_budget_bytes=10_000)
        with pytest.raises(IndexBuildError) as excinfo:
            index.build()
        assert excinfo.value.reason == "memory-budget"

    def test_generous_budget_builds(self, paper_dag):
        index = NuutilaIntervalIndex(
            paper_dag, memory_budget_bytes=10**9
        ).build()
        assert index.built


class TestQueryModes:
    def test_pwah_mode_matches_oracle(self, any_dag):
        index = NuutilaIntervalIndex(any_dag, query_mode="pwah").build()
        assert_index_matches_oracle(index, any_dag)

    def test_modes_agree(self):
        g = random_dag(90, avg_degree=2.5, seed=8)
        by_intervals = NuutilaIntervalIndex(g).build()
        by_pwah = NuutilaIntervalIndex(g, query_mode="pwah").build()
        for u in range(90):
            for v in range(90):
                assert by_intervals.query(u, v) == by_pwah.query(u, v)

    def test_invalid_mode_rejected(self, paper_dag):
        with pytest.raises(ValueError, match="query_mode"):
            NuutilaIntervalIndex(paper_dag, query_mode="bogus")

    def test_pwah_mode_requires_compression(self, paper_dag):
        with pytest.raises(ValueError, match="compress_with_pwah"):
            NuutilaIntervalIndex(
                paper_dag, compress_with_pwah=False, query_mode="pwah"
            )
