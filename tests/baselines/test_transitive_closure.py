"""Unit tests for the fully materialised TC baseline."""

import pytest

from repro.baselines.transitive_closure import TransitiveClosureIndex
from repro.exceptions import IndexBuildError
from repro.graph.generators import random_dag

from tests.conftest import assert_index_matches_oracle


class TestCorrectness:
    def test_matches_oracle(self, any_dag):
        index = TransitiveClosureIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_index_size_positive(self, paper_dag):
        index = TransitiveClosureIndex(paper_dag).build()
        assert index.index_size_bytes() > 0


class TestMemoryBudget:
    def test_budget_exceeded_raises_with_reason(self):
        g = random_dag(2000, avg_degree=1.0, seed=1)
        index = TransitiveClosureIndex(g, memory_budget_bytes=1000)
        with pytest.raises(IndexBuildError) as excinfo:
            index.build()
        assert excinfo.value.reason == "memory-budget"

    def test_generous_budget_builds(self, paper_dag):
        index = TransitiveClosureIndex(
            paper_dag, memory_budget_bytes=10**9
        ).build()
        assert index.built

    def test_failed_build_leaves_index_unbuilt(self):
        g = random_dag(2000, avg_degree=1.0, seed=1)
        index = TransitiveClosureIndex(g, memory_budget_bytes=1000)
        with pytest.raises(IndexBuildError):
            index.build()
        assert not index.built
        assert index.index_size_bytes() == 0
