"""Unit tests for the FERRARI baseline."""

from array import array

import pytest

from repro.baselines.ferrari import (
    FerrariIndex,
    IntervalSet,
    merge_interval_lists,
    restrict_to_budget,
)
from repro.graph.generators import crown_graph, random_dag

from tests.conftest import all_pairs, assert_index_matches_oracle


class TestIntervalSet:
    def _make(self, triples):
        return IntervalSet(
            array("l", [lo for lo, _, _ in triples]),
            array("l", [hi for _, hi, _ in triples]),
            bytearray(1 if e else 0 for _, _, e in triples),
        )

    def test_probe_exact(self):
        s = self._make([(0, 3, True), (7, 9, False)])
        assert s.probe(2) == 2
        assert s.probe(8) == 1
        assert s.probe(5) == 0
        assert s.probe(10) == 0

    def test_probe_boundaries(self):
        s = self._make([(4, 6, True)])
        assert s.probe(4) == 2
        assert s.probe(6) == 2
        assert s.probe(3) == 0
        assert s.probe(7) == 0

    def test_intervals_round_trip(self):
        triples = [(0, 2, True), (5, 5, False)]
        assert self._make(triples).intervals() == triples


class TestMerging:
    def test_disjoint_preserved(self):
        merged = merge_interval_lists([[(0, 1, True)], [(5, 6, True)]])
        assert merged == [(0, 1, True), (5, 6, True)]

    def test_adjacent_fused(self):
        merged = merge_interval_lists([[(0, 2, True)], [(3, 5, True)]])
        assert merged == [(0, 5, True)]

    def test_overlap_fused(self):
        merged = merge_interval_lists([[(0, 4, True)], [(2, 8, True)]])
        assert merged == [(0, 8, True)]

    def test_exactness_lost_on_mixed_merge(self):
        merged = merge_interval_lists([[(0, 4, True)], [(2, 8, False)]])
        assert merged == [(0, 8, False)]

    def test_empty_input(self):
        assert merge_interval_lists([]) == []

    def test_budget_restriction_merges_smallest_gap(self):
        intervals = [(0, 1, True), (3, 4, True), (10, 11, True)]
        restricted = restrict_to_budget(intervals, 2)
        assert restricted == [(0, 4, False), (10, 11, True)]

    def test_budget_noop_when_under(self):
        intervals = [(0, 1, True)]
        assert restrict_to_budget(intervals, 3) == intervals


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = FerrariIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    @pytest.mark.parametrize("k", [1, 2, 8])
    def test_any_budget_correct(self, k):
        g = random_dag(80, avg_degree=2.5, seed=1)
        index = FerrariIndex(g, max_intervals=k).build()
        assert_index_matches_oracle(index, g)

    def test_without_filters_correct(self, any_dag):
        index = FerrariIndex(
            any_dag, use_level_filter=False, use_positive_cut=False
        ).build()
        assert_index_matches_oracle(index, any_dag)

    def test_invalid_budget_rejected(self, paper_dag):
        with pytest.raises(ValueError):
            FerrariIndex(paper_dag, max_intervals=0)


class TestBehaviour:
    def test_budget_respected(self):
        g = random_dag(200, avg_degree=3.0, seed=2)
        index = FerrariIndex(g, max_intervals=3).build()
        assert all(len(s) <= 3 for s in index.interval_sets)

    def test_bigger_budget_fewer_searches(self):
        """More intervals = more exact coverage = fewer fallback DFS."""
        g = random_dag(150, avg_degree=3.0, seed=3)
        pairs = all_pairs(g)[:8000]
        small = FerrariIndex(g, max_intervals=1).build()
        large = FerrariIndex(g, max_intervals=16).build()
        small.query_many(pairs)
        large.query_many(pairs)
        assert large.stats.searches <= small.stats.searches

    def test_unbudgeted_sets_are_all_exact(self):
        g = random_dag(60, avg_degree=1.5, seed=4)
        index = FerrariIndex(g, max_intervals=10**6).build()
        for s in index.interval_sets:
            assert all(exact for _, _, exact in s.intervals())

    def test_crown_correct_despite_approximation(self):
        g = crown_graph(6)
        index = FerrariIndex(g, max_intervals=1).build()
        assert_index_matches_oracle(index, g)
