"""Unit tests for the un-indexed online-search baselines."""

import pytest

from repro.baselines.online_search import (
    BFSIndex,
    BidirectionalBFSIndex,
    DFSIndex,
)

from tests.conftest import assert_index_matches_oracle


@pytest.mark.parametrize(
    "index_cls", [DFSIndex, BFSIndex, BidirectionalBFSIndex]
)
class TestOnlineSearch:
    def test_matches_oracle(self, any_dag, index_cls):
        index = index_cls(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_zero_index_size(self, paper_dag, index_cls):
        index = index_cls(paper_dag).build()
        assert index.index_size_bytes() == 0

    def test_every_non_reflexive_query_searches(self, paper_dag, index_cls):
        index = index_cls(paper_dag).build()
        index.query(0, 7)
        index.query(7, 0)
        index.query(4, 4)
        assert index.stats.searches == 2
        assert index.stats.equal_cuts == 1
