"""Unit tests for the PWAH bit-vector compression."""

from repro.baselines import pwah


def _intervals_to_bits(intervals):
    bits = set()
    for lo, hi in intervals:
        bits.update(range(lo, hi + 1))
    return bits


class TestRoundTrip:
    def test_empty_set(self):
        words = pwah.compress_intervals([], universe=1000)
        assert pwah.decompress_to_intervals(words) == []

    def test_single_bit(self):
        words = pwah.compress_intervals([(5, 5)], universe=100)
        assert pwah.decompress_to_intervals(words) == [(5, 5)]

    def test_single_interval(self):
        words = pwah.compress_intervals([(10, 200)], universe=300)
        assert pwah.decompress_to_intervals(words) == [(10, 200)]

    def test_many_intervals(self):
        intervals = [(1, 4), (6, 9), (11, 12)]  # the paper's own example
        words = pwah.compress_intervals(intervals, universe=20)
        assert pwah.decompress_to_intervals(words) == intervals

    def test_interval_spanning_group_boundary(self):
        span = (pwah.GROUP_BITS - 2, pwah.GROUP_BITS + 2)
        words = pwah.compress_intervals([span], universe=4 * pwah.GROUP_BITS)
        assert pwah.decompress_to_intervals(words) == [span]

    def test_full_universe(self):
        universe = 5 * pwah.GROUP_BITS
        words = pwah.compress_intervals([(0, universe - 1)], universe=universe)
        assert pwah.decompress_to_intervals(words) == [(0, universe - 1)]

    def test_universe_not_multiple_of_group(self):
        universe = pwah.GROUP_BITS + 10
        intervals = [(0, 3), (universe - 2, universe - 1)]
        words = pwah.compress_intervals(intervals, universe=universe)
        assert pwah.decompress_to_intervals(words) == intervals


class TestContains:
    def test_membership_matches_intervals(self):
        intervals = [(3, 7), (100, 260), (400, 400)]
        universe = 512
        words = pwah.compress_intervals(intervals, universe=universe)
        bits = _intervals_to_bits(intervals)
        for position in range(universe):
            assert pwah.contains(words, position) == (position in bits)

    def test_position_beyond_stream_is_false(self):
        words = pwah.compress_intervals([(0, 5)], universe=63)
        assert not pwah.contains(words, 10_000)


class TestCompression:
    def test_long_runs_collapse(self):
        """A single huge interval must take O(1) words, not O(n)."""
        universe = 100_000
        words = pwah.compress_intervals([(0, universe - 1)], universe=universe)
        assert len(words) <= 3

    def test_all_zero_collapses(self):
        words = pwah.compress_intervals([], universe=100_000)
        assert len(words) <= 2

    def test_size_accounting(self):
        words = pwah.compress_intervals([(0, 10)], universe=1000)
        assert pwah.compressed_size_bytes(words) == 8 * len(words)

    def test_alternating_bits_stay_literal(self):
        intervals = [(i, i) for i in range(0, 62, 2)]
        words = pwah.compress_intervals(intervals, universe=pwah.GROUP_BITS)
        assert len(words) == 1  # one literal word
        assert not words[0] >> 63  # literal flag clear

    def test_words_fit_in_64_bits(self):
        intervals = [(0, 1000), (5000, 5001), (9999, 19999)]
        for word in pwah.compress_intervals(intervals, universe=20000):
            assert 0 <= word < (1 << 64)
