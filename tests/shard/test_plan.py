"""Shard planning: partitioning invariants, budget tiers, slab closure."""

import pytest

from repro.exceptions import ReproError
from repro.graph.generators import (
    crown_graph,
    layered_dag,
    random_dag,
    tree_like_dag,
)
from repro.shard import INDEX_TIERS, build_shard_plan
from tests.conftest import reachability_oracle


@pytest.fixture(scope="module")
def dag():
    return random_dag(120, avg_degree=2.0, seed=7)


@pytest.fixture(scope="module")
def plan(dag):
    return build_shard_plan(dag, 3)


class TestPartition:
    def test_bad_shard_count_rejected(self, dag):
        with pytest.raises(ReproError):
            build_shard_plan(dag, 0)

    def test_shard_count_clamped_to_vertices(self):
        small = random_dag(4, avg_degree=1.0, seed=1)
        plan = build_shard_plan(small, 16)
        assert plan.num_shards == 4
        assert all(size >= 1 for size in plan.shard_sizes())

    def test_owned_sets_partition_the_vertices(self, dag, plan):
        seen = set()
        for shard in plan.shards:
            owned = set(shard.owned)
            assert not owned & seen
            seen |= owned
        assert seen == set(range(dag.num_vertices))
        assert sum(plan.shard_sizes()) == dag.num_vertices

    def test_owner_of_agrees_with_owned_lists(self, plan):
        for shard in plan.shards:
            for v in shard.owned:
                assert plan.owner_of[v] == shard.shard_id
                assert plan.shard_of(v) == shard.shard_id
                assert shard.owns(v)

    def test_slabs_are_contiguous_x_ranges(self, plan):
        # The correctness argument rests on contiguity: shard s owns a
        # contiguous X-rank interval, and the intervals are ordered.
        x = plan.coords.x
        previous_max = -1
        for shard in plan.shards:
            ranks = sorted(x[v] for v in shard.owned)
            assert ranks == list(range(ranks[0], ranks[-1] + 1))
            assert ranks[0] == previous_max + 1
            previous_max = ranks[-1]

    def test_gateway_tables_cover_every_owned_vertex(self, dag, plan):
        backbone_n = plan.backbone.graph.num_vertices
        for shard in plan.shards:
            for v in shard.owned:
                assert shard.out_neighbors[v] == frozenset(dag.successors(v))
                for b in shard.out_gateways[v] + shard.in_gateways[v]:
                    assert 0 <= b < backbone_n


class TestSlabClosure:
    @pytest.mark.parametrize(
        "graph",
        [
            random_dag(80, avg_degree=2.5, seed=2),
            crown_graph(5),
            layered_dag(4, 6, edge_probability=0.5, seed=3),
            tree_like_dag(60, extra_edge_fraction=0.1, seed=4),
        ],
        ids=["random", "crown", "layered", "tree-like"],
    )
    def test_local_index_exact_on_same_shard_pairs(self, graph):
        # X is a topological order, so a contiguous slab is closed under
        # paths: the induced-subgraph index must answer same-shard pairs
        # exactly, with no cross-shard traffic at all.
        plan = build_shard_plan(graph, 3)
        oracle = reachability_oracle(graph)
        for shard in plan.shards:
            local_of = shard.sub.local_of
            for u in shard.owned:
                for v in shard.owned:
                    expected = oracle(u, v)
                    actual = shard.index.query(local_of[u], local_of[v])
                    assert actual == expected, (
                        f"shard {shard.shard_id} wrong on r({u}, {v}): "
                        f"got {actual}, expected {expected}"
                    )


class TestIndexBudget:
    def test_unrestricted_budget_builds_full_tier(self, plan):
        assert all(shard.index_tier == "full" for shard in plan.shards)

    def test_tiny_budget_degrades_to_cheapest_tier(self, dag):
        plan = build_shard_plan(dag, 2, index_budget_bytes=1)
        # Even an unmeetable budget must leave the shard answerable.
        assert all(shard.index_tier == "coords" for shard in plan.shards)
        for shard in plan.shards:
            assert shard.index_bytes == shard.index.index_size_bytes()

    def test_tiers_are_monotonically_cheaper(self, dag):
        sizes = []
        sub = build_shard_plan(dag, 1).shards[0]
        for tier, budget in zip(
            INDEX_TIERS, (None, sub.index_bytes - 1, 1)
        ):
            plan = build_shard_plan(dag, 1, index_budget_bytes=budget)
            shard = plan.shards[0]
            assert shard.index_tier == tier
            sizes.append(shard.index_bytes)
        assert sizes[0] > sizes[1] > sizes[2]

    def test_degraded_tier_still_answers_exactly(self, dag):
        plan = build_shard_plan(dag, 2, index_budget_bytes=1)
        oracle = reachability_oracle(dag)
        shard = plan.shards[0]
        local_of = shard.sub.local_of
        for u in shard.owned[:20]:
            for v in shard.owned[:20]:
                assert shard.index.query(local_of[u], local_of[v]) == oracle(
                    u, v
                )

    def test_index_report_shape(self, plan):
        report = plan.index_report()
        assert len(report) == plan.num_shards
        for row, shard in zip(report, plan.shards):
            assert row == {
                "shard": shard.shard_id,
                "vertices": len(shard.owned),
                "tier": shard.index_tier,
                "index_bytes": shard.index_bytes,
            }
