"""The grouped shard batch path: one RPC per (shard, sub-batch).

``ShardService.reachable_many`` used to loop ``reachable`` per pair —
every same-shard pair paid a full RPC round trip.  The fixed path
groups surviving same-shard pairs per owning shard and ships each group
as chunked ``local_many`` sub-batches, while cross-shard pairs keep the
gateway-product path.  Contract: answers, degradation and deadline
semantics are identical to the per-pair loop, and the coordinator
issues **at most one RPC per (shard, sub-batch)** for the local work.
"""

import pytest

from repro.exceptions import QueryBudgetExceeded
from repro.graph.generators import crown_graph, random_dag
from repro.resilience import UNKNOWN, QueryBudget, chaos
from repro.shard import ShardConfig, ShardService
from tests.conftest import reachability_oracle
from tests.shard.test_service import FAST, sample_pairs


class _RpcSpy:
    """Wraps ``service._rpc`` and records (shard, op) per call."""

    def __init__(self, service):
        self.calls = []
        self._orig = service._rpc
        service._rpc = self

    def __call__(self, shard_id, op, payload, deadline_at, timeout_s=None):
        self.calls.append((shard_id, op))
        return self._orig(
            shard_id, op, payload, deadline_at, timeout_s=timeout_s
        )

    def count(self, op):
        return sum(1 for _, o in self.calls if o == op)


class TestGrouping:
    def test_one_rpc_per_shard_subbatch(self):
        graph = random_dag(300, avg_degree=2.0, seed=17)
        pairs = sample_pairs(graph, count=400, seed=5)
        with ShardService(graph, FAST) as service:
            scalar = [service.reachable(u, v) for u, v in pairs]
            spy = _RpcSpy(service)
            batch = service.reachable_many(pairs)
            assert batch == scalar
            assert spy.count("local") == 0, (
                "grouped batch must not fall back to per-pair local RPCs"
            )
            # 2 shards, sub-batches ≤ _LOCAL_MANY_CHUNK: ≤ 1 RPC each.
            assert spy.count("local_many") <= service.num_shards

    def test_chunking_splits_oversized_groups(self):
        graph = random_dag(200, avg_degree=2.0, seed=3)
        oracle = reachability_oracle(graph)
        with ShardService(graph, FAST) as service:
            service._LOCAL_MANY_CHUNK = 16
            pairs = sample_pairs(graph, count=300, seed=8)
            spy = _RpcSpy(service)
            batch = service.reachable_many(pairs)
        assert spy.count("local_many") >= 1
        assert spy.count("local") == 0
        for _, op in spy.calls:
            assert op in ("local_many", "route_out", "route_in")
        assert batch == [oracle(u, v) for u, v in pairs]

    def test_empty_batch_is_free(self):
        with ShardService(random_dag(50, avg_degree=1.5, seed=1), FAST) as s:
            spy = _RpcSpy(s)
            assert s.reachable_many([]) == []
            assert spy.calls == []
            assert s.stats.queries == 0

    def test_cut_only_batch_needs_no_rpc(self):
        # A pair killed by the coordinator's own cuts never travels.
        graph = random_dag(100, avg_degree=2.0, seed=2)
        with ShardService(graph, FAST) as service:
            reflexive = [(v, v) for v in range(50)]
            spy = _RpcSpy(service)
            assert service.reachable_many(reflexive) == [True] * 50
            assert spy.calls == []


class TestSemantics:
    def test_matches_oracle_with_duplicates(self):
        graph = random_dag(150, avg_degree=2.0, seed=7)
        oracle = reachability_oracle(graph)
        pairs = sample_pairs(graph, count=80, seed=4)
        pairs = pairs + pairs[:20] + pairs[:20]  # duplicates ride along
        with ShardService(graph, FAST) as service:
            batch = service.reachable_many(pairs)
        assert batch == [oracle(u, v) for u, v in pairs]

    def test_spent_deadline_degrades_not_lies(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        pairs = sample_pairs(graph, count=50, seed=3)
        with ShardService(graph, FAST) as service:
            answers = service.query_many(pairs, deadline_ms=1e-6)
        assert any(a is UNKNOWN for a in answers)
        for (u, v), answer in zip(pairs, answers):
            if answer is not UNKNOWN:
                assert answer == oracle(u, v)

    def test_budget_raise_policy_raises_in_pair_order(self):
        graph = crown_graph(6)
        pairs = sample_pairs(graph, count=50, seed=3)
        with ShardService(graph, FAST) as service:
            with pytest.raises(QueryBudgetExceeded):
                service.reachable_many(
                    pairs,
                    budget=QueryBudget(deadline_s=1e-9, policy="raise"),
                )

    def test_batch_with_observers_matches_scalar(self):
        graph = random_dag(150, avg_degree=2.0, seed=13)
        config = ShardConfig(num_shards=2, supervise=False, observers=4)
        pairs = sample_pairs(graph, count=100, seed=9)
        with ShardService(graph, config) as service:
            batch = service.reachable_many(pairs)
            assert batch == [service.reachable(u, v) for u, v in pairs]


class TestChaos:
    def test_failed_batched_op_degrades_whole_subbatch_honestly(self):
        # A hook the forked workers inherit: every local_many RPC dies
        # on arrival, so the coordinator exhausts its retries and must
        # degrade the sub-batch — to exact fallback answers, not lies.
        graph = random_dag(120, avg_degree=2.0, seed=19)
        oracle = reachability_oracle(graph)

        def die(op=None, **context):
            if op == "local_many":
                raise chaos.InjectedFault(
                    "local_many rejected", point="shard.worker.request"
                )

        chaos.install("shard.worker.request", die)
        try:
            config = ShardConfig(
                num_shards=2,
                supervise=False,
                on_shard_loss="fallback",
                fallback_nodes=1 << 16,
            )
            with ShardService(graph, config) as service:
                pairs = sample_pairs(graph, count=60, seed=6)
                answers = service.reachable_many(pairs)
        finally:
            chaos.clear()
        for (u, v), answer in zip(pairs, answers):
            if answer is not UNKNOWN:
                assert answer == oracle(u, v)
        assert service.stats.degraded_fallback > 0

    def test_unknown_loss_policy_blankets_subbatch(self):
        graph = random_dag(120, avg_degree=2.0, seed=23)
        oracle = reachability_oracle(graph)

        def die(op=None, **context):
            if op == "local_many":
                raise chaos.InjectedFault(
                    "local_many rejected", point="shard.worker.request"
                )

        chaos.install("shard.worker.request", die)
        try:
            config = ShardConfig(
                num_shards=2, supervise=False, on_shard_loss="unknown"
            )
            with ShardService(graph, config) as service:
                pairs = sample_pairs(graph, count=60, seed=6)
                answers = service.reachable_many(pairs)
        finally:
            chaos.clear()
        assert any(a is UNKNOWN for a in answers)
        for (u, v), answer in zip(pairs, answers):
            if answer is not UNKNOWN:
                assert answer == oracle(u, v)

    def test_kills_between_batches_never_produce_wrong_answers(self):
        import random

        graph = random_dag(150, avg_degree=2.0, seed=29)
        oracle = reachability_oracle(graph)
        rng = random.Random(0)
        config = ShardConfig(
            num_shards=2, supervise=False, fallback_nodes=1 << 16
        )
        wrong = 0
        with ShardService(graph, config) as service:
            for round_id in range(4):
                pids = [p for p in service.worker_pids() if p is not None]
                if pids and round_id:
                    chaos.kill_process(rng.choice(pids))
                pairs = sample_pairs(graph, count=40, seed=round_id)
                for (u, v), answer in zip(
                    pairs, service.reachable_many(pairs)
                ):
                    if answer is not UNKNOWN and answer != oracle(u, v):
                        wrong += 1
        assert wrong == 0, f"{wrong} wrong answers under SIGKILL chaos"
