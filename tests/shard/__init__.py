"""Tests for the fault-tolerant multi-process shard tier."""
