"""The RPC protocol under chaos: drops, duplicates, stale frames, timeouts."""

import multiprocessing
import threading

import pytest

from repro.exceptions import WorkerError
from repro.graph.generators import crown_graph, random_dag
from repro.resilience import chaos
from repro.shard import ShardConfig, ShardService, WorkerChannel, build_shard_plan
from repro.shard.worker import worker_main
from tests.conftest import reachability_oracle

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard workers need the fork start method",
)


class _StubProcess:
    """A Process stand-in for channel tests served from a thread."""

    def __init__(self, alive=True, pid=12345):
        self._alive = alive
        self.pid = pid
        self.exitcode = None if alive else -9

    def is_alive(self):
        return self._alive


def make_channel():
    parent, peer = multiprocessing.get_context("fork").Pipe(duplex=True)
    return WorkerChannel(parent, _StubProcess(), shard_id=0), peer


def serve_frames(peer, frames):
    """Answer the next request on ``peer`` with the given raw frames;
    ``seq`` in a frame is replaced by the request's real sequence."""

    def run():
        seq, _op, _payload = peer.recv()
        for frame in frames:
            if isinstance(frame, tuple) and frame[0] == "seq":
                peer.send((seq,) + frame[1:])
            else:
                peer.send(frame)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestChannelProtocol:
    def test_garbage_and_stale_frames_are_discarded(self):
        channel, peer = make_channel()
        serve_frames(
            peer,
            [
                "not-a-frame",                 # garbage: wrong shape
                (999999999, "ok", "stale"),    # stale: wrong sequence
                ("seq", "ok", "the-answer"),   # the real response
            ],
        )
        assert channel.request("ping", None, timeout_s=5.0) == "the-answer"

    def test_duplicate_response_cannot_answer_the_next_request(self):
        channel, peer = make_channel()
        serve_frames(peer, [("seq", "ok", "first"), ("seq", "ok", "first")])
        assert channel.request("ping", None, timeout_s=5.0) == "first"
        # The duplicate of the first answer is still in the pipe; the
        # second request must discard it and wait for its own.
        serve_frames(peer, [("seq", "ok", "second")])
        assert channel.request("ping", None, timeout_s=5.0) == "second"

    def test_error_status_raises_transient_worker_error(self):
        channel, peer = make_channel()
        serve_frames(peer, [("seq", "error", "ValueError: boom")])
        with pytest.raises(WorkerError) as excinfo:
            channel.request("local", (0, 1, None), timeout_s=5.0)
        assert excinfo.value.transient

    def test_timeout_raises_transient_worker_error(self):
        channel, _peer = make_channel()
        with pytest.raises(WorkerError) as excinfo:
            channel.request("ping", None, timeout_s=0.05)
        assert excinfo.value.transient
        assert "timed out" in str(excinfo.value)

    def test_dead_process_detected_while_waiting(self):
        channel, _peer = make_channel()
        channel.process._alive = False
        with pytest.raises(WorkerError) as excinfo:
            channel.request("ping", None, timeout_s=5.0)
        assert "died" in str(excinfo.value)

    def test_try_request_yields_none_when_busy(self):
        channel, _peer = make_channel()
        with channel.lock:
            assert channel.try_request("ping", None, timeout_s=0.01) is None

    def test_closed_channel_fails_fast(self):
        channel, _peer = make_channel()
        channel.close()
        channel.close()  # idempotent
        with pytest.raises(WorkerError):
            channel.request("ping", None, timeout_s=1.0)


class TestWorkerUnderChaos:
    """Chaos hooks installed *before* the fork are inherited by workers."""

    def spawn_worker(self, plan, shard_id=0):
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main, args=(plan.shards[shard_id], child), daemon=True
        )
        process.start()
        child.close()
        return WorkerChannel(parent, process, shard_id)

    def test_dropped_response_recovers_on_retry(self):
        plan = build_shard_plan(random_dag(40, avg_degree=2.0, seed=1), 1)
        state = {"dropped": False}

        def drop_once(**context):
            if not state["dropped"]:
                state["dropped"] = True
                raise chaos.DropResponse("chaos: eaten")

        with chaos.injected("shard.worker.respond", drop_once):
            channel = self.spawn_worker(plan)
        try:
            # First RPC: the response is swallowed, the wait times out.
            with pytest.raises(WorkerError):
                channel.request("ping", None, timeout_s=0.3)
            # Same worker, same pipe: the retry simply works, and the
            # sequence numbers keep the two requests unconfusable.
            assert channel.request("ping", None, timeout_s=5.0) == "pong"
        finally:
            channel.request("stop", None, timeout_s=1.0)
            channel.process.join(timeout=2.0)
            channel.close()

    def test_duplicated_responses_are_harmless(self):
        plan = build_shard_plan(random_dag(40, avg_degree=2.0, seed=1), 1)

        def duplicate(**context):
            raise chaos.DuplicateResponse("chaos: twice")

        with chaos.injected("shard.worker.respond", duplicate):
            channel = self.spawn_worker(plan)
        try:
            shard = plan.shards[0]
            oracle = reachability_oracle(plan.dag)
            for u in shard.owned[:8]:
                for v in shard.owned[:8]:
                    answer = channel.request(
                        "local", (u, v, None), timeout_s=5.0
                    )
                    assert answer == oracle(u, v), (u, v)
        finally:
            channel.request("stop", None, timeout_s=1.0)
            channel.process.join(timeout=2.0)
            channel.close()


class TestServiceUnderRpcChaos:
    def test_service_survives_duplicated_responses(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)

        def duplicate(**context):
            raise chaos.DuplicateResponse("chaos: twice")

        with chaos.injected("shard.worker.respond", duplicate):
            service = ShardService(
                graph, ShardConfig(num_shards=2, supervise=False)
            )
        with service:
            import random

            rng = random.Random(0)
            n = graph.num_vertices
            for _ in range(80):
                u, v = rng.randrange(n), rng.randrange(n)
                assert service.reachable(u, v) == oracle(u, v)

    def test_always_failing_worker_degrades_to_exact_fallback(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)

        def explode(**context):
            raise ValueError("chaos: worker bug")

        # The hook stays installed for the whole run, so even the
        # hedged-re-dispatch replacement workers fork with it: every
        # attempt fails, and each shard-bound query must fall back.
        with chaos.injected("shard.worker.request", explode):
            with ShardService(
                graph,
                ShardConfig(
                    num_shards=2, supervise=False, rpc_timeout_s=0.5,
                    on_shard_loss="fallback",
                ),
            ) as service:
                import random

                rng = random.Random(1)
                n = graph.num_vertices
                for _ in range(40):
                    u, v = rng.randrange(n), rng.randrange(n)
                    assert service.reachable(u, v) == oracle(u, v)
                if service.stats.local_queries or service.stats.cross_queries:
                    assert service.stats.degraded_fallback >= 1
                    assert service.stats.rpc_failures >= 1
