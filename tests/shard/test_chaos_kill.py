"""Kill-based chaos: SIGKILL/SIGSTOP live workers under real traffic.

The contract under murder — enforced here and by ``repro chaos-drill``
in CI — is *correct-or-UNKNOWN, within the deadline*: a killed or wedged
worker may cost an answer, never buy a wrong one, and never a hang.
"""

import multiprocessing
import random
import time

import pytest

from repro.graph.generators import crown_graph, random_dag
from repro.resilience import UNKNOWN, chaos
from repro.shard import ShardConfig, ShardService, chaos_drill
from tests.conftest import reachability_oracle

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard workers need the fork start method",
)

DEADLINE_MS = 400.0
GRACE_MS = 400.0


def run_traffic(service, graph, oracle, queries, kill_every=None, seed=0):
    """Drive queries, optionally murdering a random live worker every
    ``kill_every`` queries; returns (wrong, unknowns, violations)."""
    rng = random.Random(seed)
    n = graph.num_vertices
    wrong = unknowns = violations = 0
    for i in range(queries):
        if kill_every and i % kill_every == kill_every - 1:
            pids = [p for p in service.worker_pids() if p is not None]
            if pids:
                chaos.kill_process(rng.choice(pids))
        u, v = rng.randrange(n), rng.randrange(n)
        start = time.monotonic()
        answer = service.query(u, v, deadline_ms=DEADLINE_MS)
        elapsed_ms = (time.monotonic() - start) * 1000.0
        if elapsed_ms > DEADLINE_MS + GRACE_MS:
            violations += 1
        if answer is UNKNOWN:
            unknowns += 1
        elif answer != oracle(u, v):
            wrong += 1
    return wrong, unknowns, violations


class TestSigkillUnderTraffic:
    def test_repeated_kills_never_produce_wrong_answers(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        config = ShardConfig(
            num_shards=3,
            rpc_timeout_s=0.2,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.2,
        )
        with ShardService(graph, config) as service:
            wrong, unknowns, violations = run_traffic(
                service, graph, oracle, queries=150, kill_every=20
            )
        assert wrong == 0, f"{wrong} wrong answers under SIGKILL chaos"
        assert violations == 0, f"{violations} deadline violations"
        assert service.stats.restarts >= 1
        # Kills are cheap to recover from: most answers stay exact.
        assert unknowns < 150

    def test_service_fully_recovers_after_the_storm(self):
        graph = random_dag(200, avg_degree=2.0, seed=21)
        oracle = reachability_oracle(graph)
        config = ShardConfig(num_shards=3, supervise=False, rpc_timeout_s=0.2)
        with ShardService(graph, config) as service:
            run_traffic(service, graph, oracle, queries=60, kill_every=10)
            # Post-chaos, with every worker re-forked, service is exact.
            wrong, unknowns, violations = run_traffic(
                service, graph, oracle, queries=60, seed=99
            )
            assert wrong == 0
            assert unknowns == 0
            assert service.alive_workers() == service.num_shards


class TestSigstopUnderTraffic:
    def test_frozen_worker_costs_answers_not_correctness(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        config = ShardConfig(
            num_shards=2,
            rpc_timeout_s=0.1,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.1,
            heartbeat_miss_limit=2,
            on_shard_loss="unknown",
        )
        with ShardService(graph, config) as service:
            victim = service.worker_pids()[0]
            chaos.freeze_process(victim)
            try:
                wrong, _unknowns, violations = run_traffic(
                    service, graph, oracle, queries=40, seed=5
                )
                assert wrong == 0
                assert violations == 0
                # The supervisor fences (kills) and replaces the frozen
                # worker; afterwards service is exact again.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pids = service.worker_pids()
                    if pids[0] is not None and pids[0] != victim:
                        break
                    time.sleep(0.02)
                wrong, unknowns, _ = run_traffic(
                    service, graph, oracle, queries=40, seed=6
                )
                assert wrong == 0
                assert unknowns == 0
            finally:
                chaos.thaw_process(victim)


class TestChaosDrill:
    def test_drill_report_honours_the_contract(self):
        graph = random_dag(250, avg_degree=2.0, seed=42)
        report = chaos_drill(
            graph,
            num_shards=3,
            num_pairs=60,
            deadline_ms=DEADLINE_MS,
            grace_ms=GRACE_MS,
            baseline_s=0.3,
            chaos_s=1.2,
            degraded_s=0.3,
            kill_interval_s=0.15,
            seed=7,
        )
        assert report["contract"]["wrong_answers"] == 0
        assert report["contract"]["deadline_violations"] == 0
        assert report["faults"]["sigkills"] + report["faults"]["sigstops"] >= 1
        for phase in ("baseline", "chaos", "degraded"):
            assert report["phases"][phase]["queries"] >= 1
        assert report["service_stats"]["restarts"] >= 1
        assert report["plan"]["shard_sizes"]
        assert len(report["plan"]["index_report"]) == 3

    def test_drill_unknown_loss_policy(self):
        graph = random_dag(150, avg_degree=2.0, seed=3)
        report = chaos_drill(
            graph,
            num_shards=2,
            num_pairs=40,
            deadline_ms=DEADLINE_MS,
            grace_ms=GRACE_MS,
            baseline_s=0.2,
            chaos_s=0.4,
            degraded_s=0.3,
            kill_interval_s=0.2,
            on_shard_loss="unknown",
            seed=8,
        )
        assert report["contract"]["wrong_answers"] == 0
        assert report["config"]["on_shard_loss"] == "unknown"
