"""Cross-process trace stitching over real forked shard workers.

One traced query against :class:`ShardService` must yield one tree in
the coordinator's ring: ``shard.query → shard.rpc → worker.* → …`` with
the worker spans carrying a foreign pid, all under a single trace id.
Worker telemetry rides the same piggyback and folds into the
coordinator registry under a ``shard`` label.  And because piggyback
loss is free, SIGKILLing workers mid-traffic may cost spans, never ring
integrity and never a wrong answer.
"""

import multiprocessing
import os
import random
import time

import pytest

from repro.graph.generators import crown_graph, random_dag
from repro.obs.distributed import trace_payload, trace_tree
from repro.obs.metrics import metrics_enabled
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import tracing_enabled
from repro.resilience import UNKNOWN, chaos
from repro.shard import ShardConfig, ShardService
from tests.conftest import reachability_oracle

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard workers need the fork start method",
)

FAST_CONFIG = ShardConfig(
    num_shards=2,
    rpc_timeout_s=0.5,
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=0.2,
)


def drive_all_pairs(service, graph):
    """Query every pair once; returns {(u, v): answer}."""
    n = graph.num_vertices
    return {
        (u, v): service.query(u, v, deadline_ms=500.0)
        for u in range(n)
        for v in range(n)
    }


class TestStitchedTrace:
    def test_worker_spans_reparent_under_the_coordinator_rpc(self):
        graph = crown_graph(6)
        with tracing_enabled() as tracer:
            # The tracer must be live *before* the fork so workers
            # inherit an enabled ring.
            with ShardService(graph, FAST_CONFIG) as service:
                drive_all_pairs(service, graph)
                assert service.stats.local_queries > 0
        me = os.getpid()
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        worker_spans = [s for s in spans if s.name.startswith("worker.")]
        assert worker_spans, "no worker spans were piggybacked home"
        stitched = 0
        for span in worker_spans:
            assert span.pid != me  # genuinely from another process
            assert span.trace_id is not None
            parent = by_id.get(span.parent_id)
            if parent is None:
                continue  # child of another adopted worker span's batch
            stitched += 1
            # A worker root hangs off the coordinator's shard.rpc span
            # and shares the originating query's trace end to end.
            assert parent.name == "shard.rpc"
            assert parent.pid == me
            assert parent.trace_id == span.trace_id
            root = by_id.get(parent.parent_id)
            assert root is not None and root.name == "shard.query"
            assert root.trace_id == span.trace_id
        assert stitched > 0

    def test_trace_payload_spans_multiple_processes(self):
        graph = crown_graph(6)
        with tracing_enabled() as tracer:
            with ShardService(graph, FAST_CONFIG) as service:
                drive_all_pairs(service, graph)
        me = os.getpid()
        multi = [
            tid
            for tid in {s.trace_id for s in tracer.spans() if s.trace_id}
            if len({s.pid for s in tracer.spans_for_trace(tid)}) >= 2
        ]
        assert multi, "no trace collected spans from more than one process"
        payload = trace_payload(tracer, multi[0])
        assert len(payload["pids"]) >= 2 and me in payload["pids"]
        roots = trace_tree(tracer, multi[0])
        assert roots and roots[0]["name"] == "shard.query"

    def test_worker_telemetry_lands_with_a_shard_label(self):
        graph = random_dag(120, avg_degree=2.0, seed=11)
        with metrics_enabled() as registry:
            with ShardService(graph, FAST_CONFIG) as service:
                # The heartbeat ping carries each worker's registry
                # snapshot; wait for at least one round trip.
                deadline = time.monotonic() + 5.0
                found = set()
                while time.monotonic() < deadline and len(found) < 2:
                    for (_, name, labels), gauge in list(
                        registry._instruments.items()
                    ):
                        if name != "repro_shard_index_tier_info":
                            continue
                        shard = dict(labels).get("shard")
                        if shard is not None and gauge.value == 1:
                            found.add(shard)
                    time.sleep(0.02)
                assert found == {"0", "1"}
                assert service.alive_workers() == 2

    def test_slow_log_entries_carry_trace_and_shard(self):
        graph = crown_graph(6)
        with tracing_enabled():
            with ShardService(graph, FAST_CONFIG) as service:
                log = service.attach_slow_log(
                    SlowQueryLog(capacity=4096, threshold_ns=0)
                )
                answers = drive_all_pairs(service, graph)
                n = graph.num_vertices
                batch = service.query_many(
                    [(u, v) for u in range(n) for v in range(n)],
                    deadline_ms=500.0,
                )
        assert list(answers.values()) == batch
        records = log.records()
        assert records
        traced = [r for r in records if r.trace_id is not None]
        assert traced, "no slow-log entry joined a trace"
        routed = [r for r in records if r.shard is not None]
        assert routed, "no slow-log entry named its owning shard"
        assert {r.method for r in records} <= {"shard", "shard.local_many"}
        batched = [r for r in records if r.method == "shard.local_many"]
        assert all(r.shard is not None for r in batched)


class TestChaosWithTracing:
    def test_sigkill_mid_traffic_never_corrupts_the_ring(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        rng = random.Random(7)
        n = graph.num_vertices
        with tracing_enabled() as tracer:
            with ShardService(graph, FAST_CONFIG) as service:
                wrong = 0
                for i in range(120):
                    if i % 15 == 14:
                        pids = [
                            p for p in service.worker_pids() if p is not None
                        ]
                        if pids:
                            chaos.kill_process(rng.choice(pids))
                    u, v = rng.randrange(n), rng.randrange(n)
                    answer = service.query(u, v, deadline_ms=400.0)
                    if answer is not UNKNOWN and answer != oracle(u, v):
                        wrong += 1
                assert wrong == 0
                assert service.stats.restarts >= 1
        # Piggyback loss must never corrupt the ring: every span is
        # well-formed and every trace still renders as a tree.
        spans = tracer.spans()
        assert spans
        ids = set()
        for span in spans:
            assert isinstance(span.name, str) and span.name
            assert span.duration_ns >= 0
            assert span.span_id not in ids  # adoption never collides ids
            ids.add(span.span_id)
        for tid in {s.trace_id for s in spans if s.trace_id is not None}:
            payload = trace_payload(tracer, tid)
            assert payload["span_count"] >= 1


class TestZeroOverheadWire:
    @staticmethod
    def spy_on_frames(service):
        frames = []
        for channel in service._channels:
            original = channel.conn.send

            def send(frame, _original=original):
                frames.append(frame)
                return _original(frame)

            channel.conn.send = send
        return frames

    def test_default_frames_stay_3_tuples(self):
        graph = crown_graph(6)
        config = ShardConfig(num_shards=2, supervise=False)
        with ShardService(graph, config) as service:
            frames = self.spy_on_frames(service)
            drive_all_pairs(service, graph)
            n = graph.num_vertices
            service.query_many([(u, v) for u in range(n) for v in range(n)])
        assert frames, "no RPC left the coordinator"
        assert all(len(frame) == 3 for frame in frames)

    def test_traced_frames_carry_the_trace_ctx(self):
        graph = crown_graph(6)
        config = ShardConfig(num_shards=2, supervise=False)
        with tracing_enabled():
            with ShardService(graph, config) as service:
                frames = self.spy_on_frames(service)
                drive_all_pairs(service, graph)
        tagged = [frame for frame in frames if len(frame) == 4]
        assert tagged
        for frame in tagged:
            trace_id, parent_id = frame[3]
            assert isinstance(trace_id, int) and trace_id > 0
            assert isinstance(parent_id, int)

    def test_answers_bit_identical_with_tracing_toggled(self):
        graph = random_dag(150, avg_degree=2.0, seed=5)
        rng = random.Random(9)
        pairs = [(rng.randrange(150), rng.randrange(150)) for _ in range(60)]
        config = ShardConfig(num_shards=2, supervise=False)
        with ShardService(graph, config) as plain:
            baseline = plain.query_many(pairs)
        with tracing_enabled():
            with ShardService(graph, config) as traced:
                answers = traced.query_many(pairs)
        assert answers == baseline
