"""ShardService: correctness vs oracle, deadlines, failover, lifecycle."""

import time

import pytest

from repro.exceptions import (
    InvalidVertexError,
    QueryBudgetExceeded,
    ReproError,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import crown_graph, random_dag
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.resilience import UNKNOWN, QueryBudget, chaos
from repro.shard import ShardConfig, ShardService
from tests.conftest import reachability_oracle

FAST = ShardConfig(num_shards=2, supervise=False)


def sample_pairs(graph, count=150, seed=0):
    import random

    rng = random.Random(seed)
    n = graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"rpc_timeout_s": 0.0},
            {"default_deadline_ms": -5.0},
            {"on_shard_loss": "panic"},
            {"fallback_nodes": 0},
            {"max_attempts": 0},
            {"heartbeat_miss_limit": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ReproError):
            ShardConfig(**kwargs)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph",
        [
            random_dag(150, avg_degree=2.0, seed=11),
            crown_graph(5),
        ],
        ids=["random", "crown"],
    )
    def test_answers_match_oracle(self, graph):
        oracle = reachability_oracle(graph)
        with ShardService(graph, ShardConfig(num_shards=3, supervise=False)) as service:
            for u, v in sample_pairs(graph):
                assert service.reachable(u, v) == oracle(u, v)
        stats = service.stats.as_dict()
        assert stats["queries"] == 150
        assert stats["unknowns"] == 0

    def test_cyclic_input_condensed(self):
        # 0 <-> 1 form an SCC; 2 unreachable from it.
        graph = DiGraph(4, [(0, 1), (1, 0), (1, 2), (3, 0)])
        with ShardService(graph, FAST) as service:
            assert service.reachable(0, 1) is True
            assert service.reachable(1, 0) is True
            assert service.reachable(3, 2) is True
            assert service.reachable(2, 0) is False

    def test_edge_iterable_accepted(self):
        with ShardService([(0, 1), (1, 2)], FAST) as service:
            assert service.reachable(0, 2) is True

    def test_out_of_range_vertex_rejected(self):
        with ShardService(random_dag(30, avg_degree=1.5, seed=1), FAST) as service:
            with pytest.raises(InvalidVertexError):
                service.reachable(0, 30)

    def test_reachable_many_matches_scalar(self):
        graph = random_dag(100, avg_degree=2.0, seed=5)
        pairs = sample_pairs(graph, count=60, seed=2)
        with ShardService(graph, FAST) as service:
            batch = service.reachable_many(pairs)
            assert batch == [service.reachable(u, v) for u, v in pairs]


class TestDeadlines:
    def test_spent_deadline_degrades_to_unknown(self):
        # Crown graphs defeat every cut, so the query must travel to a
        # worker — where a microscopic deadline cannot possibly hold.
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        with ShardService(graph, FAST) as service:
            answers = [
                service.query(u, v, deadline_ms=1e-6)
                for u, v in sample_pairs(graph, count=50, seed=3)
            ]
        unknowns = [a for a in answers if a is UNKNOWN]
        assert unknowns, "a ~1ns deadline should have degraded something"
        assert service.stats.deadline_unknowns >= len(unknowns)
        # And nothing degraded into a lie.
        for (u, v), answer in zip(sample_pairs(graph, count=50, seed=3), answers):
            if answer is not UNKNOWN:
                assert answer == oracle(u, v)

    def test_generous_deadline_answers_exactly(self):
        graph = random_dag(100, avg_degree=2.0, seed=9)
        oracle = reachability_oracle(graph)
        with ShardService(graph, FAST) as service:
            for u, v in sample_pairs(graph, count=80, seed=4):
                assert service.query(u, v, deadline_ms=5000.0) == oracle(u, v)

    def test_default_deadline_from_config(self):
        graph = crown_graph(6)
        config = ShardConfig(
            num_shards=2, supervise=False, default_deadline_ms=1e-6
        )
        with ShardService(graph, config) as service:
            answers = [
                service.query(u, v)
                for u, v in sample_pairs(graph, count=30, seed=5)
            ]
        assert any(a is UNKNOWN for a in answers)

    def test_budget_deadline_propagates(self):
        graph = crown_graph(6)
        budget = QueryBudget(deadline_s=1e-9, policy="unknown")
        with ShardService(graph, FAST) as service:
            answers = [
                service.reachable(u, v, budget=budget)
                for u, v in sample_pairs(graph, count=30, seed=6)
            ]
        assert any(a is UNKNOWN for a in answers)

    def test_raise_policy_raises_on_degradation(self):
        graph = crown_graph(6)
        budget = QueryBudget(deadline_s=1e-9, policy="raise")
        with ShardService(graph, FAST) as service:
            with pytest.raises(QueryBudgetExceeded) as excinfo:
                for u, v in sample_pairs(graph, count=30, seed=7):
                    service.reachable(u, v, budget=budget)
        assert excinfo.value.resource == "deadline"


class TestFailover:
    def test_killed_workers_fail_over_without_wrong_answers(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        config = ShardConfig(
            num_shards=2, supervise=False, rpc_timeout_s=0.5
        )
        with ShardService(graph, config) as service:
            for pid in service.worker_pids():
                if pid is not None:
                    chaos.kill_process(pid)
            for u, v in sample_pairs(graph, count=60, seed=8):
                answer = service.reachable(u, v)
                assert answer == oracle(u, v)
            assert service.stats.restarts >= 1
            assert service.alive_workers() == service.num_shards

    def test_failover_latency_recorded(self):
        graph = crown_graph(6)
        with ShardService(graph, FAST) as service:
            for pid in service.worker_pids():
                if pid is not None:
                    chaos.kill_process(pid)
            for u, v in sample_pairs(graph, count=60, seed=9):
                service.reachable(u, v)
            stats = service.stats
            # Kills land mid-poll at worst, so some RPC saw a failure
            # and its successful retry was timed.
            if stats.rpc_failures:
                assert stats.failovers >= 1
                assert all(t >= 0 for t in stats.failover_latencies_s)

    def test_supervisor_restarts_dead_worker(self):
        graph = random_dag(60, avg_degree=2.0, seed=3)
        config = ShardConfig(
            num_shards=2,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.2,
        )
        with ShardService(graph, config) as service:
            victim = service.worker_pids()[0]
            assert victim is not None
            chaos.kill_process(victim)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                pids = service.worker_pids()
                if pids[0] is not None and pids[0] != victim:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("supervisor never restarted the killed worker")
            assert service.stats.restarts >= 1

    def test_supervisor_replaces_frozen_worker(self):
        graph = random_dag(60, avg_degree=2.0, seed=3)
        config = ShardConfig(
            num_shards=2,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.1,
            heartbeat_miss_limit=2,
        )
        with ShardService(graph, config) as service:
            victim = service.worker_pids()[0]
            assert victim is not None
            chaos.freeze_process(victim)
            try:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pids = service.worker_pids()
                    if pids[0] is not None and pids[0] != victim:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("frozen worker was never fenced and replaced")
                assert service.stats.heartbeat_misses >= 1
            finally:
                chaos.thaw_process(victim)  # in case fencing lost the race


class TestShardLoss:
    def test_fallback_policy_answers_exactly(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        config = ShardConfig(
            num_shards=2, supervise=False, rpc_timeout_s=0.2,
            on_shard_loss="fallback",
        )
        with ShardService(graph, config) as service:
            service.halt_worker(0)
            for u, v in sample_pairs(graph, count=60, seed=10):
                assert service.reachable(u, v) == oracle(u, v)
            assert service.stats.degraded_fallback >= 1

    def test_unknown_policy_degrades_honestly(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        config = ShardConfig(
            num_shards=2, supervise=False, rpc_timeout_s=0.2,
            on_shard_loss="unknown",
        )
        with ShardService(graph, config) as service:
            service.halt_worker(0)
            answers = [
                service.reachable(u, v)
                for u, v in sample_pairs(graph, count=60, seed=11)
            ]
        unknowns = sum(1 for a in answers if a is UNKNOWN)
        assert unknowns >= 1
        assert service.stats.degraded_unknown == unknowns
        for (u, v), answer in zip(
            sample_pairs(graph, count=60, seed=11), answers
        ):
            if answer is not UNKNOWN:
                assert answer == oracle(u, v)

    def test_revive_restores_exact_service(self):
        graph = crown_graph(6)
        oracle = reachability_oracle(graph)
        config = ShardConfig(
            num_shards=2, supervise=False, rpc_timeout_s=0.2,
            on_shard_loss="unknown",
        )
        with ShardService(graph, config) as service:
            service.halt_worker(0)
            service.revive_worker(0)
            assert service.alive_workers() == 2
            for u, v in sample_pairs(graph, count=40, seed=12):
                assert service.reachable(u, v) == oracle(u, v)


class TestObservability:
    def test_restart_and_degraded_metrics(self):
        registry = enable_metrics()
        try:
            graph = crown_graph(6)
            config = ShardConfig(
                num_shards=2, supervise=False, rpc_timeout_s=0.2,
                on_shard_loss="fallback",
            )
            with ShardService(graph, config) as service:
                for pid in service.worker_pids():
                    if pid is not None:
                        chaos.kill_process(pid)
                for u, v in sample_pairs(graph, count=40, seed=13):
                    service.reachable(u, v)
                service.halt_worker(0)
                for u, v in sample_pairs(graph, count=40, seed=13):
                    service.reachable(u, v)
            counters = registry.snapshot()["counters"]
            for family in (
                "repro_shard_worker_restarts_total",
                "repro_shard_rpc_total",
                "repro_shard_degraded_total",
            ):
                assert any(key.startswith(family) for key in counters), (
                    f"{family} missing from {sorted(counters)}"
                )
        finally:
            disable_metrics()


class TestLifecycle:
    def test_close_is_idempotent_and_queries_after_close_raise(self):
        service = ShardService(random_dag(40, avg_degree=1.5, seed=2), FAST)
        service.close()
        service.close()
        assert service.alive_workers() == 0
        with pytest.raises(ReproError):
            service.query(0, 1)

    def test_context_manager_reaps_workers(self):
        with ShardService(
            random_dag(40, avg_degree=1.5, seed=2), FAST
        ) as service:
            pids = [pid for pid in service.worker_pids() if pid is not None]
            assert len(pids) == 2
        assert service.alive_workers() == 0

    def test_repr_mentions_shards(self):
        with ShardService(
            random_dag(40, avg_degree=1.5, seed=2), FAST
        ) as service:
            assert "shards=2" in repr(service)
