"""Scale sanity: the library's headline claim is *very large* graphs.

Pure Python caps what a test suite can chew through, but a 100k-vertex
build plus sampled query validation must work and stay within sane time
and memory — these tests guard against accidental quadratic behaviour
sneaking into the hot paths.
"""

import time

from repro.core.query import FelineIndex
from repro.datasets.queries import random_pairs
from repro.graph.generators import random_dag, tree_like_dag
from repro.graph.traversal import dfs_reachable


class TestScale:
    def test_feline_on_100k_vertices(self):
        g = random_dag(100_000, avg_degree=2.0, seed=1)
        start = time.perf_counter()
        index = FelineIndex(g).build()
        build_s = time.perf_counter() - start
        assert build_s < 30  # linearithmic construction, generous bound

        pairs = random_pairs(g, 500, seed=2)
        for u, v in pairs[:100]:
            assert index.query(u, v) == dfs_reachable(g, u, v)

        # Index stays linear: 5 arrays x 8 bytes per vertex.
        assert index.index_size_bytes() <= 100_000 * 48

    def test_deep_tree_no_recursion_issues(self):
        # Hub-free recursive trees are the deepest family we generate.
        g = tree_like_dag(50_000, seed=3)
        index = FelineIndex(g).build()
        assert index.query(0, 49_999) == dfs_reachable(g, 0, 49_999)

    def test_batch_path_at_scale(self):
        g = random_dag(50_000, avg_degree=1.5, seed=4)
        index = FelineIndex(g).build()
        pairs = random_pairs(g, 20_000, seed=5)
        start = time.perf_counter()
        answers = index.query_many(pairs)
        elapsed = time.perf_counter() - start
        assert len(answers) == 20_000
        assert elapsed < 20
