"""Integration: full pipelines from raw input to answered queries."""

import repro
from repro.bench.harness import MethodSpec, measure_method
from repro.datasets.queries import random_pairs
from repro.datasets.registry import load_dataset
from repro.graph.generators import random_digraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.traversal import dfs_reachable


class TestFileToQueries:
    def test_round_trip_through_disk(self, tmp_path):
        g = random_digraph(80, 240, seed=1)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        oracle = repro.Reachability(read_edge_list(path))
        for u, v in random_pairs(g, 400, seed=2):
            assert oracle.reachable(u, v) == dfs_reachable(g, u, v)


class TestDatasetToBench:
    def test_dataset_through_harness(self):
        g = load_dataset("citeseer", scale=0.02, seed=0)
        pairs = random_pairs(g, 100, seed=1)
        feline = measure_method(g, MethodSpec("feline"), pairs, runs=1)
        grail = measure_method(g, MethodSpec("grail"), pairs, runs=1)
        assert feline.ok and grail.ok
        assert feline.positives == grail.positives


class TestPaperShapeClaims:
    """The qualitative claims the reproduction commits to (DESIGN.md §5),
    checked at small scale so they gate the test suite."""

    def _sweep(self, g, methods, pairs):
        return {
            m: measure_method(g, MethodSpec(m), pairs, runs=3)
            for m in methods
        }

    def test_feline_constructs_faster_than_grail_and_ferrari(self):
        # Aggregate two mid-size datasets so machine noise cannot flip
        # the comparison: the paper's gap is 2-3x, far above jitter.
        totals = {"feline": 0.0, "grail": 0.0, "ferrari": 0.0}
        for name in ("arxiv", "citeseer"):
            g = load_dataset(name, scale=0.5, seed=0)
            pairs = random_pairs(g, 50, seed=1)
            results = self._sweep(g, list(totals), pairs)
            for method, result in results.items():
                totals[method] += result.construction_ms
        assert totals["feline"] < totals["grail"]
        assert totals["feline"] < totals["ferrari"]

    def test_grail_index_larger_than_feline(self):
        g = load_dataset("citeseer", scale=0.1, seed=0)
        pairs = random_pairs(g, 10, seed=1)
        results = self._sweep(g, ["feline", "grail"], pairs)
        assert results["grail"].index_bytes > results["feline"].index_bytes

    def test_feline_b_expands_fewer_vertices_than_grail(self):
        from repro.baselines.base import create_index

        g = load_dataset("arxiv", scale=0.15, seed=0)
        pairs = random_pairs(g, 3000, seed=1)
        feline_b = create_index("feline-b", g).build()
        grail = create_index("grail", g).build()
        feline_b.query_many(pairs)
        grail.query_many(pairs)
        assert feline_b.stats.expanded <= grail.stats.expanded
