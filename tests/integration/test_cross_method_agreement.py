"""Integration: every registered method answers every query identically.

This is the strongest correctness statement the library makes: on every
graph family of the zoo and several larger random instances, all twelve
registered methods (two of which are trivially correct searches) agree
with the exact transitive-closure oracle on every pair.
"""

import pytest

from repro.baselines.base import available_methods, create_index
from repro.datasets.queries import mixed_workload
from repro.datasets.real_stand_ins import load_real_stand_in
from repro.graph.generators import random_dag

from tests.conftest import assert_index_matches_oracle, reachability_oracle

ALL_METHODS = sorted(available_methods())


@pytest.mark.parametrize("method", ALL_METHODS)
class TestZooAgreement:
    def test_exhaustive_agreement(self, any_dag, method):
        if method == "custom-test":  # registered by a unit test
            pytest.skip("test-local registration")
        index = create_index(method, any_dag).build()
        assert_index_matches_oracle(index, any_dag)


class TestLargerInstances:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_methods_agree_on_sampled_workload(self, seed):
        g = random_dag(400, avg_degree=2.5, seed=seed)
        workload = mixed_workload(g, 600, positive_fraction=0.3, seed=seed)
        oracle = reachability_oracle(g)
        expected = [oracle(u, v) for u, v in workload.pairs]
        for method in ALL_METHODS:
            if method == "custom-test":
                continue
            index = create_index(method, g).build()
            answers = index.query_many(workload.pairs)
            assert answers == expected, method

    def test_stand_in_dataset_agreement(self):
        g = load_real_stand_in("go", scale=0.05, seed=1)
        workload = mixed_workload(g, 400, positive_fraction=0.25, seed=2)
        oracle = reachability_oracle(g)
        expected = [oracle(u, v) for u, v in workload.pairs]
        for method in ("feline", "feline-b", "grail", "ferrari", "scarab"):
            index = create_index(method, g).build()
            assert index.query_many(workload.pairs) == expected, method
