"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the full set is exercised manually /
by CI at longer timeouts); each is executed in-process via runpy with
stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "social_network.py",
    "index_drawing.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "social_network.py",
        "ontology_hierarchy.py",
        "compare_methods.py",
        "index_drawing.py",
        "streaming_citations.py",
        "distributed_cluster.py",
    }
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found
