"""Unit tests for the Y-ordering heuristics."""

import pytest

from repro.core.analysis import count_false_positives
from repro.core.heuristics import (
    available_heuristics,
    compute_y_order,
)
from repro.core.index import build_feline_index
from repro.exceptions import ReproError
from repro.graph.generators import random_dag
from repro.graph.toposort import (
    dfs_topological_order,
    is_topological_order,
    ranks_from_order,
)


class TestAvailability:
    def test_papers_heuristic_listed_first(self):
        assert available_heuristics()[0] == "max-x"

    def test_all_four_present(self):
        assert set(available_heuristics()) == {"max-x", "min-x", "fifo", "random"}

    def test_unknown_heuristic_rejected(self, paper_dag):
        x = ranks_from_order(dfs_topological_order(paper_dag))
        with pytest.raises(ReproError, match="unknown Y heuristic"):
            compute_y_order(paper_dag, x, heuristic="nope")


class TestValidity:
    @pytest.mark.parametrize("heuristic", ["max-x", "min-x", "fifo", "random"])
    def test_every_heuristic_gives_topological_order(self, any_dag, heuristic):
        x = ranks_from_order(
            dfs_topological_order(any_dag)
            if any_dag.num_vertices
            else []
        )
        order = compute_y_order(any_dag, x, heuristic=heuristic, seed=3)
        assert is_topological_order(any_dag, order)

    def test_random_heuristic_deterministic_per_seed(self, paper_dag):
        x = ranks_from_order(dfs_topological_order(paper_dag))
        a = compute_y_order(paper_dag, x, heuristic="random", seed=5)
        b = compute_y_order(paper_dag, x, heuristic="random", seed=5)
        assert a == b

    def test_random_heuristic_varies_with_seed(self):
        g = random_dag(100, avg_degree=1.5, seed=0)
        x = ranks_from_order(dfs_topological_order(g))
        a = compute_y_order(g, x, heuristic="random", seed=1)
        b = compute_y_order(g, x, heuristic="random", seed=2)
        assert a != b


class TestQuality:
    def test_max_x_not_worse_than_min_x_on_random_dags(self):
        """The paper's locally-optimal heuristic should produce no more
        false positives than the adversarial control, aggregated over a
        few random DAGs."""
        total_max_x = 0
        total_min_x = 0
        for seed in range(5):
            g = random_dag(60, avg_degree=1.5, seed=seed)
            for heuristic, bucket in (("max-x", "a"), ("min-x", "b")):
                coords = build_feline_index(
                    g,
                    y_heuristic=heuristic,
                    with_level_filter=False,
                    with_positive_cut=False,
                )
                fp = count_false_positives(g, coords)
                if heuristic == "max-x":
                    total_max_x += fp
                else:
                    total_min_x += fp
        assert total_max_x <= total_min_x

    def test_min_x_tends_to_copy_x(self):
        """min-x pops the lowest X rank first, making Y ≈ X, which turns
        the second dimension useless (dominance ≈ one ordering)."""
        g = random_dag(80, avg_degree=1.0, seed=1)
        coords = build_feline_index(
            g,
            y_heuristic="min-x",
            with_level_filter=False,
            with_positive_cut=False,
        )
        agreements = sum(
            1 for v in range(80) if coords.x[v] == coords.y[v]
        )
        assert agreements > 40  # Y mostly mirrors X
