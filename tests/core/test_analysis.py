"""Unit tests for index-quality analysis."""

from repro.core.analysis import (
    count_false_positives,
    dominance_pair_count,
    false_positive_pairs,
    negative_cut_rate,
)
from repro.core.index import build_feline_index
from repro.graph.generators import crown_graph, path_graph, random_dag
from repro.graph.transitive import count_reachable_pairs

from tests.conftest import all_pairs, reachability_oracle


def _bare_index(graph):
    return build_feline_index(
        graph, with_level_filter=False, with_positive_cut=False
    )


class TestDominanceCount:
    def test_counting_identity(self, any_dag):
        """dominance pairs == reachable pairs + false positives."""
        coords = _bare_index(any_dag)
        dominance = dominance_pair_count(coords)
        reachable = count_reachable_pairs(any_dag)
        false_pos = count_false_positives(any_dag, coords)
        assert dominance == reachable + false_pos

    def test_path_graph_all_pairs_dominate(self):
        g = path_graph(10)
        coords = _bare_index(g)
        assert dominance_pair_count(coords) == 45  # n(n-1)/2

    def test_matches_naive_count(self):
        g = random_dag(60, avg_degree=2.0, seed=1)
        coords = _bare_index(g)
        naive = sum(
            1
            for u in range(60)
            for v in range(60)
            if u != v and coords.dominates(u, v)
        )
        assert dominance_pair_count(coords) == naive


class TestFalsePositives:
    def test_tree_has_no_false_positives_possible(self):
        """A path admits a perfect drawing, and Algorithm 1 finds it."""
        g = path_graph(20)
        coords = _bare_index(g)
        assert count_false_positives(g, coords) == 0

    def test_crown_must_have_false_positives(self):
        """Paper Figure 4: S⁰ₖ (k ≥ 3) admits no 2D drawing free of
        falsely implied paths — any valid index has at least one."""
        g = crown_graph(4)
        coords = _bare_index(g)
        assert count_false_positives(g, coords) > 0

    def test_pairs_are_really_false(self):
        g = random_dag(50, avg_degree=2.0, seed=2)
        coords = _bare_index(g)
        oracle = reachability_oracle(g)
        for u, v in false_positive_pairs(g, coords):
            assert coords.dominates(u, v)
            assert not oracle(u, v)


class TestNegativeCutRate:
    def test_rate_bounds(self, any_dag):
        coords = _bare_index(any_dag)
        pairs = all_pairs(any_dag)
        if not pairs:
            return
        rate = negative_cut_rate(any_dag, coords, pairs)
        assert 0.0 <= rate <= 1.0

    def test_empty_workload_rate_zero(self, paper_dag):
        coords = _bare_index(paper_dag)
        assert negative_cut_rate(paper_dag, coords, []) == 0.0

    def test_sparse_random_dag_cuts_most_pairs(self):
        """The paper's headline: a significant portion of queries answered
        in O(1).  On sparse random DAGs that portion is the majority."""
        g = random_dag(300, avg_degree=1.0, seed=3)
        coords = _bare_index(g)
        rate = negative_cut_rate(g, coords, all_pairs(g))
        assert rate > 0.5
