"""Unit tests for FELINE index persistence and memory-mapped loading."""

import pytest

from repro.core.index import build_feline_index
from repro.core.persistence import (
    load_coordinates,
    load_index,
    save_coordinates,
    save_index,
)
from repro.core.query import FelineIndex
from repro.exceptions import ReproError
from repro.graph.generators import random_dag

from tests.conftest import all_pairs, assert_index_matches_oracle


@pytest.fixture
def graph():
    return random_dag(150, avg_degree=2.0, seed=3)


class TestRoundTrip:
    def test_coordinates_round_trip(self, graph, tmp_path):
        coords = build_feline_index(graph)
        path = tmp_path / "g.feline"
        save_coordinates(coords, path)
        loaded = load_coordinates(path)
        assert list(loaded.x) == list(coords.x)
        assert list(loaded.y) == list(coords.y)
        assert list(loaded.levels) == list(coords.levels)
        assert list(loaded.tree_intervals.start) == list(
            coords.tree_intervals.start
        )

    def test_round_trip_without_filters(self, graph, tmp_path):
        coords = build_feline_index(
            graph, with_level_filter=False, with_positive_cut=False
        )
        path = tmp_path / "bare.feline"
        save_coordinates(coords, path)
        loaded = load_coordinates(path)
        assert loaded.levels is None
        assert loaded.tree_intervals is None

    def test_loaded_index_answers_correctly(self, graph, tmp_path):
        original = FelineIndex(graph).build()
        path = tmp_path / "g.feline"
        save_index(original, path)
        loaded = load_index(graph, path)
        assert_index_matches_oracle(loaded, graph)

    def test_mmap_index_answers_correctly(self, graph, tmp_path):
        original = FelineIndex(graph).build()
        path = tmp_path / "g.feline"
        save_index(original, path)
        loaded = load_index(graph, path, mmap=True)
        expected = original.query_many(all_pairs(graph)[:2000])
        assert loaded.query_many(all_pairs(graph)[:2000]) == expected


class TestValidation:
    def test_unbuilt_index_rejected(self, graph, tmp_path):
        with pytest.raises(ReproError, match="unbuilt"):
            save_index(FelineIndex(graph), tmp_path / "x.feline")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.feline"
        path.write_bytes(b"NOTANIDX" + b"\0" * 64)
        with pytest.raises(ReproError, match="bad magic"):
            load_coordinates(path)

    def test_truncated_file_rejected(self, graph, tmp_path):
        coords = build_feline_index(graph)
        path = tmp_path / "g.feline"
        save_coordinates(coords, path)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ReproError, match="truncated"):
            load_coordinates(path)

    def test_vertex_count_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "g.feline"
        save_index(FelineIndex(graph).build(), path)
        other = random_dag(10, avg_degree=1.0, seed=0)
        with pytest.raises(ReproError, match="vertices"):
            load_index(other, path)

    def test_empty_graph_round_trip(self, tmp_path):
        from repro.graph.digraph import DiGraph

        g = DiGraph(0, [])
        coords = build_feline_index(g)
        path = tmp_path / "empty.feline"
        save_coordinates(coords, path)
        assert load_coordinates(path).num_vertices == 0
