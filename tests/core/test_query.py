"""Unit tests for FELINE query answering (Algorithms 2/3)."""

import pytest

from repro.core.query import FelineIndex
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import crown_graph, random_dag

from tests.conftest import all_pairs, assert_index_matches_oracle


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = FelineIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_matches_oracle_without_filters(self, any_dag):
        index = FelineIndex(
            any_dag, use_level_filter=False, use_positive_cut=False
        ).build()
        assert_index_matches_oracle(index, any_dag)

    def test_matches_oracle_with_kahn_x(self, any_dag):
        index = FelineIndex(any_dag, x_order="kahn").build()
        assert_index_matches_oracle(index, any_dag)

    @pytest.mark.parametrize("heuristic", ["max-x", "min-x", "fifo", "random"])
    def test_soundness_never_depends_on_heuristic(self, heuristic):
        g = random_dag(70, avg_degree=2.0, seed=3)
        index = FelineIndex(g, y_heuristic=heuristic, seed=9).build()
        assert_index_matches_oracle(index, g)

    def test_crown_graph_forces_search_but_stays_correct(self):
        """S⁰ₖ admits no false-positive-free 2D drawing (paper Fig. 4);
        queries must still come out right via the search."""
        g = crown_graph(6)
        index = FelineIndex(g).build()
        assert_index_matches_oracle(index, g)


class TestLifecycle:
    def test_query_before_build_raises(self, paper_dag):
        index = FelineIndex(paper_dag)
        with pytest.raises(IndexNotBuiltError):
            index.query(0, 1)

    def test_query_many_before_build_raises(self, paper_dag):
        with pytest.raises(IndexNotBuiltError):
            FelineIndex(paper_dag).query_many([(0, 1)])

    def test_build_returns_self(self, paper_dag):
        index = FelineIndex(paper_dag)
        assert index.build() is index
        assert index.built

    def test_index_size_zero_before_build(self, paper_dag):
        assert FelineIndex(paper_dag).index_size_bytes() == 0

    def test_repr_shows_state(self, paper_dag):
        index = FelineIndex(paper_dag)
        assert "unbuilt" in repr(index)
        index.build()
        assert "built" in repr(index)


class TestStatistics:
    def test_queries_counted(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        index.query_many(all_pairs(paper_dag))
        assert index.stats.queries == 64

    def test_equal_cut_counted(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        index.query(3, 3)
        assert index.stats.equal_cuts == 1

    def test_negative_cut_dominates_most_random_pairs(self):
        g = random_dag(200, avg_degree=1.0, seed=5)
        index = FelineIndex(g).build()
        index.query_many(all_pairs(g)[:5000])
        # Sparse random DAGs: the vast majority of pairs are unreachable
        # and most are cut in O(1) — the paper's headline claim.
        assert index.stats.negative_cuts > index.stats.searches

    def test_positive_cut_fires_on_tree_paths(self):
        from repro.graph.generators import path_graph

        index = FelineIndex(path_graph(10)).build()
        assert index.query(0, 9)
        assert index.stats.positive_cuts == 1
        assert index.stats.searches == 0

    def test_stats_reset(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        index.query(0, 7)
        index.stats.reset()
        assert index.stats.queries == 0
        assert index.stats.as_dict()["positive_cuts"] == 0


class TestPruning:
    def test_pruned_branches_counted_on_crown(self):
        g = crown_graph(8)
        index = FelineIndex(
            g, use_level_filter=False, use_positive_cut=False
        ).build()
        for u, v in all_pairs(g):
            index.query(u, v)
        assert index.stats.pruned > 0

    def test_search_space_bounded_by_target(self):
        """Vertices after the target in either ordering are never expanded
        (the paper's Figure 6 example behaviour)."""
        g = random_dag(300, avg_degree=2.0, seed=11)
        index = FelineIndex(
            g, use_level_filter=False, use_positive_cut=False
        ).build()
        coords = index.coordinates
        pairs = all_pairs(g)[:3000]
        for u, v in pairs:
            index.stats.reset()
            index.query(u, v)
            if index.stats.searches:
                # Expansion count can never exceed the number of vertices
                # inside the dominance rectangle between u and v.
                admissible = sum(
                    1
                    for w in range(300)
                    if coords.x[w] <= coords.x[v] and coords.y[w] <= coords.y[v]
                    and coords.x[u] <= coords.x[w] and coords.y[u] <= coords.y[w]
                )
                assert index.stats.expanded <= max(1, admissible)
