"""Unit tests for the method advisor."""

from repro.baselines.base import available_methods, create_index
from repro.core.advisor import (
    describe_recommendation,
    extract_features,
    recommend_method,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    path_graph,
    random_dag,
    tree_like_dag,
)


class TestFeatures:
    def test_empty_graph(self):
        features = extract_features(DiGraph(0, []))
        assert features.num_vertices == 0
        assert features.avg_degree == 0.0

    def test_path_features(self):
        features = extract_features(path_graph(10))
        assert features.num_vertices == 10
        assert features.root_fraction == 0.1
        assert features.leaf_fraction == 0.1
        assert features.non_tree_edge_fraction == 0.0

    def test_dense_graph_has_non_tree_edges(self):
        features = extract_features(citation_dag(500, seed=1))
        assert features.non_tree_edge_fraction > 0.3


class TestRules:
    def test_tiny_graph_gets_tc(self):
        assert recommend_method(random_dag(100, seed=1)) == "tc"

    def test_near_tree_gets_dual_labeling(self):
        g = tree_like_dag(2000, extra_edge_fraction=0.005, seed=2)
        assert recommend_method(g) == "dual-labeling"

    def test_medium_graph_gets_interval(self):
        g = random_dag(2000, avg_degree=2.0, seed=3)
        assert recommend_method(g) == "interval"

    def test_query_heavy_gets_feline_b(self):
        g = citation_dag(3000, avg_out_degree=5.0, seed=4)
        assert recommend_method(g, expect_query_heavy=True) == "feline-b"

    def test_huge_dense_gets_feline(self):
        g = citation_dag(3000, avg_out_degree=5.0, seed=4)
        assert recommend_method(g, interval_budget_bytes=1000) == "feline"

    def test_recommendation_is_always_registered(self):
        for seed in range(3):
            g = random_dag(800, avg_degree=1.0 + seed, seed=seed)
            for heavy in (False, True):
                method = recommend_method(g, expect_query_heavy=heavy)
                assert method in available_methods()

    def test_recommended_index_actually_works(self):
        g = tree_like_dag(1500, extra_edge_fraction=0.005, seed=5)
        method = recommend_method(g)
        index = create_index(method, g).build()
        from repro.graph.traversal import dfs_reachable

        for u, v in [(0, 1499), (1499, 0), (3, 3)]:
            assert index.query(u, v) == dfs_reachable(g, u, v)


class TestDescription:
    def test_description_mentions_method_and_reason(self):
        g = random_dag(100, seed=1)
        text = describe_recommendation(g)
        assert "recommended: tc" in text
        assert "because:" in text
        assert "|V|=100" in text
