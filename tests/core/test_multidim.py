"""Unit tests for FELINE-K (the k-dimensional generalisation)."""

import pytest

from repro.core.analysis import count_false_positives
from repro.core.index import build_feline_index
from repro.core.multidim import MultiDimFelineIndex
from repro.core.query import FelineIndex
from repro.graph.generators import crown_graph, random_dag
from repro.graph.toposort import is_topological_order
from repro.graph.traversal import dfs_reachable

from tests.conftest import all_pairs, assert_index_matches_oracle


class TestCorrectness:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = MultiDimFelineIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_every_dimension_count_correct(self, d):
        g = random_dag(80, avg_degree=2.5, seed=1)
        index = MultiDimFelineIndex(g, dimensions=d).build()
        assert_index_matches_oracle(index, g)

    def test_too_few_dimensions_rejected(self, paper_dag):
        with pytest.raises(ValueError):
            MultiDimFelineIndex(paper_dag, dimensions=1)

    def test_without_filters_correct(self, any_dag):
        index = MultiDimFelineIndex(
            any_dag, use_level_filter=False, use_positive_cut=False
        ).build()
        assert_index_matches_oracle(index, any_dag)


class TestStructure:
    def test_every_dimension_is_topological(self, any_dag):
        index = MultiDimFelineIndex(any_dag, dimensions=4).build()
        n = any_dag.num_vertices
        for ranks in index.ranks:
            order = [0] * n
            for v in range(n):
                order[ranks[v]] = v
            assert is_topological_order(any_dag, order)

    def test_two_dimensions_equal_plain_feline_coordinates(self):
        g = random_dag(100, avg_degree=2.0, seed=2)
        multi = MultiDimFelineIndex(g, dimensions=2).build()
        plain = build_feline_index(g)
        assert list(multi.ranks[0]) == list(plain.x)
        assert list(multi.ranks[1]) == list(plain.y)

    def test_index_grows_linearly_with_dimensions(self):
        g = random_dag(200, avg_degree=2.0, seed=3)
        d2 = MultiDimFelineIndex(g, dimensions=2).build().index_size_bytes()
        d4 = MultiDimFelineIndex(g, dimensions=4).build().index_size_bytes()
        assert d4 - d2 == 2 * 8 * 200  # two extra rank arrays

    def test_soundness_in_every_dimension(self, any_dag):
        index = MultiDimFelineIndex(any_dag, dimensions=3).build()
        for u, v in any_dag.edges():
            assert index.dominates(u, v)


class TestPruningPower:
    def test_more_dimensions_never_fewer_negative_cuts(self):
        g = random_dag(150, avg_degree=2.0, seed=4)
        pairs = all_pairs(g)[:8000]
        d2 = MultiDimFelineIndex(g, dimensions=2).build()
        d5 = MultiDimFelineIndex(g, dimensions=5).build()
        d2.query_many(pairs)
        d5.query_many(pairs)
        assert d5.stats.negative_cuts >= d2.stats.negative_cuts

    def test_extra_dimensions_reduce_false_positives_on_crown(self):
        """Each added dimension intersects the dominance set, so the
        falsely-implied-pair count is non-increasing."""
        g = crown_graph(8)

        def false_positive_count(index):
            return sum(
                1
                for u in range(16)
                for v in range(16)
                if u != v
                and index.dominates(u, v)
                and not dfs_reachable(g, u, v)
            )

        counts = []
        for d in (2, 3, 4):
            index = MultiDimFelineIndex(
                g, dimensions=d, use_level_filter=False,
                use_positive_cut=False,
            ).build()
            counts.append(false_positive_count(index))
        assert counts[0] >= counts[1] >= counts[2]

    def test_expansions_never_exceed_plain_feline(self):
        g = random_dag(150, avg_degree=3.0, seed=5)
        pairs = all_pairs(g)[:8000]
        plain = FelineIndex(g).build()
        multi = MultiDimFelineIndex(g, dimensions=4).build()
        plain.query_many(pairs)
        multi.query_many(pairs)
        assert multi.stats.expanded <= plain.stats.expanded


class TestRegistry:
    def test_feline_k_registered(self):
        from repro.baselines.base import available_methods, create_index
        from repro.graph.generators import diamond_graph

        assert "feline-k" in available_methods()
        index = create_index("feline-k", diamond_graph(), dimensions=3)
        index.build()
        assert index.query(0, 3) and not index.query(1, 2)
