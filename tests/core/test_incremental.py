"""Unit tests for the incremental FELINE index."""

from random import Random

import pytest

from repro.core.incremental import IncrementalFelineIndex
from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import dfs_reachable


class TestConstruction:
    def test_empty_start(self):
        index = IncrementalFelineIndex()
        assert index.num_vertices == 0

    def test_from_static_dag(self, paper_dag):
        index = IncrementalFelineIndex(paper_dag)
        assert index.num_vertices == 8
        assert index.check_invariants()

    def test_from_edges(self):
        index = IncrementalFelineIndex.from_edges(3, [(0, 1), (1, 2)])
        assert index.query(0, 2)


class TestGrowth:
    def test_add_vertex(self):
        index = IncrementalFelineIndex.from_edges(2, [(0, 1)])
        v = index.add_vertex()
        assert v == 2
        assert not index.query(0, 2)
        index.add_edge(1, 2)
        assert index.query(0, 2)

    def test_add_edge_updates_queries(self):
        index = IncrementalFelineIndex.from_edges(4, [(0, 1), (2, 3)])
        assert not index.query(0, 3)
        index.add_edge(1, 2)
        assert index.query(0, 3)

    def test_cycle_rejected_graph_unchanged(self):
        index = IncrementalFelineIndex.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(NotADAGError):
            index.add_edge(2, 0)
        assert index.num_edges == 2
        assert index.check_invariants()
        assert index.query(0, 2) and not index.query(2, 0)

    def test_self_loop_rejected(self):
        index = IncrementalFelineIndex.from_edges(2, [(0, 1)])
        with pytest.raises(NotADAGError):
            index.add_edge(1, 1)

    def test_counters(self):
        index = IncrementalFelineIndex.from_edges(3, [])
        index.add_edge(2, 0)  # backward: must reorder
        index.add_edge(0, 1)  # may or may not reorder
        assert index.edges_inserted == 2
        assert index.reorders >= 1
        assert "inserts=2" in repr(index)


class TestCorrectnessUnderStreams:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_stream_matches_dfs_after_every_insert(self, seed):
        """The strongest incremental test: replay a DAG edge by edge in a
        shuffled order; after every insertion, the invariants hold and a
        sample of queries matches a fresh DFS on the current graph."""
        target = random_dag(40, avg_degree=2.0, seed=seed)
        edges = list(target.edges())
        Random(seed).shuffle(edges)
        index = IncrementalFelineIndex(DiGraph(40, []))
        current: list[tuple[int, int]] = []
        rng = Random(seed + 100)
        for u, v in edges:
            index.add_edge(u, v)
            current.append((u, v))
            assert index.check_invariants()
            snapshot = DiGraph(40, current)
            for _ in range(15):
                a, b = rng.randrange(40), rng.randrange(40)
                assert index.query(a, b) == dfs_reachable(snapshot, a, b)

    def test_final_state_matches_full_rebuild(self):
        target = random_dag(80, avg_degree=2.5, seed=7)
        edges = list(target.edges())
        Random(3).shuffle(edges)
        index = IncrementalFelineIndex(DiGraph(80, []))
        for u, v in edges:
            index.add_edge(u, v)
        for u in range(80):
            for v in range(80):
                assert index.query(u, v) == dfs_reachable(target, u, v)

    def test_vertex_growth_stream(self):
        """Interleave vertex and edge insertions (citation-style growth)."""
        rng = Random(11)
        index = IncrementalFelineIndex()
        first = index.add_vertex()
        edges: list[tuple[int, int]] = []
        for _ in range(60):
            v = index.add_vertex()
            for _ in range(rng.randrange(0, 3)):
                target = rng.randrange(v)
                index.add_edge(v, target)  # new cites old
                edges.append((v, target))
        assert index.check_invariants()
        snapshot = DiGraph(index.num_vertices, edges)
        for _ in range(400):
            a = rng.randrange(index.num_vertices)
            b = rng.randrange(index.num_vertices)
            assert index.query(a, b) == dfs_reachable(snapshot, a, b)


class TestSoundnessInvariant:
    def test_dominance_always_necessary(self):
        """Theorem 1 must hold after every insertion."""
        target = random_dag(50, avg_degree=2.0, seed=13)
        edges = list(target.edges())
        Random(1).shuffle(edges)
        index = IncrementalFelineIndex(DiGraph(50, []))
        for u, v in edges:
            index.add_edge(u, v)
        for u, v in edges:
            assert index.dominates(u, v)

    def test_coordinate_accessor(self):
        index = IncrementalFelineIndex.from_edges(2, [(0, 1)])
        x0, y0 = index.coordinate(0)
        x1, y1 = index.coordinate(1)
        assert x0 < x1 and y0 < y1


class TestLevelPropagation:
    def test_levels_deepen_with_new_edges(self):
        index = IncrementalFelineIndex.from_edges(4, [(0, 1), (2, 3)])
        # Joining the two chains deepens 2 and 3.
        index.add_edge(1, 2)
        assert index._levels[2] == 2 and index._levels[3] == 3

    def test_redundant_edge_no_level_change(self):
        index = IncrementalFelineIndex.from_edges(3, [(0, 1), (1, 2)])
        before = list(index._levels)
        index.add_edge(0, 2)  # shortcut: levels already deeper
        assert list(index._levels) == before


class TestForwardOnlyGrowth:
    def test_order_respecting_edges_never_reorder(self):
        """Edges that already agree with the current coordinates must
        insert without any Pearce-Kelly repair."""
        index = IncrementalFelineIndex.from_edges(100, [])
        from repro.graph.generators import random_dag

        g = random_dag(100, avg_degree=2.0, seed=21)
        # Relabel the whole DAG (one consistent bijection) so edges run
        # down the *actual* initial ranks, whatever order the builder
        # chose for the edgeless start.
        by_rank = sorted(range(100), key=lambda v: index.coordinate(v))
        for u, v in g.edges():
            index.add_edge(by_rank[u], by_rank[v])
        assert index.reorders == 0
        assert index.check_invariants()
