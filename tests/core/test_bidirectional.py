"""Unit tests for FELINE-I and FELINE-B."""

import pytest

from repro.core.bidirectional import FelineBIndex, FelineIIndex
from repro.core.query import FelineIndex
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import crown_graph, random_dag

from tests.conftest import all_pairs, assert_index_matches_oracle


class TestFelineI:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = FelineIIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_coordinates_differ_from_normal_index(self):
        g = random_dag(100, avg_degree=2.0, seed=1)
        normal = FelineIndex(g).build()
        reversed_ = FelineIIndex(g).build()
        # The reversed drawing places vertices differently (paper Fig. 12).
        assert list(normal.coordinates.x) != list(reversed_.coordinates.x)

    def test_same_index_size_as_feline(self, paper_dag):
        normal = FelineIndex(paper_dag).build()
        reversed_ = FelineIIndex(paper_dag).build()
        assert normal.index_size_bytes() == reversed_.index_size_bytes()

    def test_query_before_build_raises(self, paper_dag):
        with pytest.raises(IndexNotBuiltError):
            FelineIIndex(paper_dag).query(0, 1)

    def test_stats_recorded_on_wrapper(self, paper_dag):
        index = FelineIIndex(paper_dag).build()
        index.query(0, 7)
        assert index.stats.queries == 1


class TestFelineB:
    def test_matches_oracle_on_zoo(self, any_dag):
        index = FelineBIndex(any_dag).build()
        assert_index_matches_oracle(index, any_dag)

    def test_crown_graph_correct(self):
        g = crown_graph(5)
        index = FelineBIndex(g).build()
        assert_index_matches_oracle(index, g)

    def test_index_bigger_than_feline_but_less_than_double(self):
        """Paper §4.3.5: FELINE-B's index is larger than FELINE's but not
        twice as big, because the filters are built only once."""
        g = random_dag(300, avg_degree=2.0, seed=2)
        single = FelineIndex(g).build().index_size_bytes()
        double = FelineBIndex(g).build().index_size_bytes()
        assert single < double < 2 * single

    def test_negative_cut_rate_at_least_feline(self):
        """Two dominance tests cut at least as many queries as one."""
        g = random_dag(150, avg_degree=1.5, seed=3)
        pairs = all_pairs(g)[:8000]
        feline = FelineIndex(g).build()
        feline_b = FelineBIndex(g).build()
        feline.query_many(pairs)
        feline_b.query_many(pairs)
        assert feline_b.stats.negative_cuts >= feline.stats.negative_cuts

    def test_search_never_expands_more_than_feline(self):
        """Intersecting admissible regions can only shrink the search."""
        g = random_dag(200, avg_degree=3.0, seed=4)
        pairs = all_pairs(g)[:6000]
        feline = FelineIndex(g).build()
        feline_b = FelineBIndex(g).build()
        feline.query_many(pairs)
        feline_b.query_many(pairs)
        assert feline_b.stats.expanded <= feline.stats.expanded

    def test_query_before_build_raises(self, paper_dag):
        with pytest.raises(IndexNotBuiltError):
            FelineBIndex(paper_dag).query(0, 1)

    def test_backward_index_has_no_filters(self, paper_dag):
        index = FelineBIndex(paper_dag).build()
        assert index.backward.levels is None
        assert index.backward.tree_intervals is None
        assert index.forward.levels is not None
