"""Unit tests for FELINE index construction (Algorithm 1)."""

import pytest

from repro.core.index import build_feline_index
from repro.exceptions import NotADAGError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.toposort import is_topological_order
from repro.graph.traversal import dfs_reachable


def _orders_from_coords(coords):
    n = coords.num_vertices
    x_order = [0] * n
    y_order = [0] * n
    for v in range(n):
        x_order[coords.x[v]] = v
        y_order[coords.y[v]] = v
    return x_order, y_order


class TestConstruction:
    def test_coordinates_are_permutations(self, any_dag):
        coords = build_feline_index(any_dag)
        n = any_dag.num_vertices
        assert sorted(coords.x) == list(range(n))
        assert sorted(coords.y) == list(range(n))

    def test_both_orderings_topological(self, any_dag):
        coords = build_feline_index(any_dag)
        x_order, y_order = _orders_from_coords(coords)
        assert is_topological_order(any_dag, x_order)
        assert is_topological_order(any_dag, y_order)

    def test_theorem1_soundness(self, any_dag):
        """r(u, v) ⇒ i(u) ≼ i(v) — the index's core invariant."""
        coords = build_feline_index(any_dag)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                if dfs_reachable(any_dag, u, v):
                    assert coords.dominates(u, v), (u, v)

    def test_kahn_x_order_also_sound(self, any_dag):
        coords = build_feline_index(any_dag, x_order="kahn")
        for u, v in any_dag.edges():
            assert coords.dominates(u, v)

    def test_unknown_x_order_rejected(self, paper_dag):
        with pytest.raises(ReproError, match="x_order"):
            build_feline_index(paper_dag, x_order="bogus")

    def test_cyclic_input_rejected(self):
        with pytest.raises(NotADAGError):
            build_feline_index(DiGraph(2, [(0, 1), (1, 0)]))

    def test_empty_graph(self):
        coords = build_feline_index(DiGraph(0, []))
        assert coords.num_vertices == 0


class TestFilters:
    def test_filters_present_by_default(self, paper_dag):
        coords = build_feline_index(paper_dag)
        assert coords.levels is not None
        assert coords.tree_intervals is not None

    def test_filters_can_be_disabled(self, paper_dag):
        coords = build_feline_index(
            paper_dag, with_level_filter=False, with_positive_cut=False
        )
        assert coords.levels is None
        assert coords.tree_intervals is None

    def test_memory_reflects_filters(self, paper_dag):
        bare = build_feline_index(
            paper_dag, with_level_filter=False, with_positive_cut=False
        )
        full = build_feline_index(paper_dag)
        assert full.memory_bytes() > bare.memory_bytes()
        # Bare index is exactly two coordinate arrays.
        assert bare.memory_bytes() == 2 * 8 * paper_dag.num_vertices


class TestDominates:
    def test_reflexive(self, paper_dag):
        coords = build_feline_index(paper_dag)
        for v in range(8):
            assert coords.dominates(v, v)

    def test_antisymmetric_for_distinct(self, paper_dag):
        coords = build_feline_index(paper_dag)
        for u in range(8):
            for v in range(8):
                if u != v and coords.dominates(u, v):
                    assert not coords.dominates(v, u)

    def test_coordinate_accessor(self, paper_dag):
        coords = build_feline_index(paper_dag)
        for v in range(8):
            assert coords.coordinate(v) == (coords.x[v], coords.y[v])
