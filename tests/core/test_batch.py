"""Unit tests for the vectorised batch query path (``query_many``).

The long-deprecated ``repro.core.batch.query_batch`` wrapper is gone;
``FelineIndex.query_many`` (and ``Reachability.reachable_many`` on the
facade) is the batch entry point and routes through the same vectorised
engine.  These tests pin the behaviours the wrapper's suite used to
cover, now on the surviving surface.
"""

import numpy as np
import pytest

from repro.core.query import FelineIndex
from repro.datasets.queries import mixed_workload, random_pairs
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import crown_graph, random_dag

from tests.conftest import all_pairs


class TestBatchQueries:
    def test_matches_scalar_path_on_zoo(self, any_dag):
        index = FelineIndex(any_dag).build()
        pairs = all_pairs(any_dag)
        if not pairs:
            return
        scalar = [FelineIndex(any_dag).build().query(u, v) for u, v in pairs]
        assert index.query_many(pairs) == scalar

    def test_matches_scalar_without_filters(self):
        g = random_dag(150, avg_degree=2.5, seed=1)
        index = FelineIndex(
            g, use_level_filter=False, use_positive_cut=False
        ).build()
        scalar = FelineIndex(
            g, use_level_filter=False, use_positive_cut=False
        ).build()
        pairs = random_pairs(g, 4000, seed=2)
        assert index.query_many(pairs) == [
            scalar.query(u, v) for u, v in pairs
        ]

    def test_crown_graph_searches_still_exact(self):
        g = crown_graph(7)
        index = FelineIndex(g).build()
        scalar = FelineIndex(g).build()
        pairs = all_pairs(g)
        assert index.query_many(pairs) == [
            scalar.query(u, v) for u, v in pairs
        ]

    def test_empty_batch(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        result = index.query_many([])
        assert result == []

    def test_unbuilt_index_rejected(self, paper_dag):
        with pytest.raises(IndexNotBuiltError):
            FelineIndex(paper_dag).query_many([(0, 1)])

    def test_stats_match_scalar_counters(self):
        g = random_dag(120, avg_degree=2.0, seed=3)
        workload = mixed_workload(g, 3000, positive_fraction=0.3, seed=4)

        scalar = FelineIndex(g).build()
        for u, v in workload.pairs:
            scalar.query(u, v)
        batch = FelineIndex(g).build()
        batch.query_many(workload.pairs)

        s, b = scalar.stats, batch.stats
        assert b.queries == s.queries
        assert b.equal_cuts == s.equal_cuts
        assert b.negative_cuts == s.negative_cuts
        assert b.positive_cuts == s.positive_cuts
        assert b.searches == s.searches

    def test_accepts_numpy_input(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        pairs = np.array([(0, 7), (7, 0), (3, 3)])
        assert index.query_many(pairs) == [True, False, True]


class TestQueryManyDispatch:
    """FelineIndex.query_many routes through the vectorized batch path."""

    def test_query_many_returns_list_of_bools(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        answers = index.query_many([(0, 7), (7, 0)])
        assert isinstance(answers, list)
        assert all(isinstance(a, bool) for a in answers)

    def test_query_many_counts_stats_once(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        index.query_many([(0, 7), (7, 0), (3, 3)])
        assert index.stats.queries == 3

    def test_query_batch_removed(self):
        """The deprecated wrapper and its module are gone for good."""
        import repro.core

        assert not hasattr(repro.core, "query_batch")
        assert "query_batch" not in repro.core.__all__
        with pytest.raises(ModuleNotFoundError):
            import repro.core.batch  # noqa: F401
