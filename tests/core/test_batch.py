"""Unit tests for the vectorised batch query path."""

import numpy as np
import pytest

from repro.core.batch import query_batch
from repro.core.query import FelineIndex
from repro.datasets.queries import mixed_workload, random_pairs
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import crown_graph, random_dag

from tests.conftest import all_pairs


class TestBatchQueries:
    def test_matches_scalar_path_on_zoo(self, any_dag):
        index = FelineIndex(any_dag).build()
        pairs = all_pairs(any_dag)
        if not pairs:
            return
        scalar = index.query_many(pairs)
        batch = query_batch(index, pairs)
        assert batch.tolist() == scalar

    def test_matches_scalar_without_filters(self):
        g = random_dag(150, avg_degree=2.5, seed=1)
        index = FelineIndex(
            g, use_level_filter=False, use_positive_cut=False
        ).build()
        pairs = random_pairs(g, 4000, seed=2)
        assert query_batch(index, pairs).tolist() == index.query_many(pairs)

    def test_crown_graph_searches_still_exact(self):
        g = crown_graph(7)
        index = FelineIndex(g).build()
        pairs = all_pairs(g)
        assert query_batch(index, pairs).tolist() == index.query_many(pairs)

    def test_empty_batch(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        result = query_batch(index, [])
        assert isinstance(result, np.ndarray) and len(result) == 0

    def test_unbuilt_index_rejected(self, paper_dag):
        with pytest.raises(IndexNotBuiltError):
            query_batch(FelineIndex(paper_dag), [(0, 1)])

    def test_stats_match_scalar_counters(self):
        g = random_dag(120, avg_degree=2.0, seed=3)
        workload = mixed_workload(g, 3000, positive_fraction=0.3, seed=4)

        scalar = FelineIndex(g).build()
        scalar.query_many(workload.pairs)
        batch = FelineIndex(g).build()
        query_batch(batch, workload.pairs)

        s, b = scalar.stats, batch.stats
        assert b.queries == s.queries
        assert b.equal_cuts == s.equal_cuts
        assert b.negative_cuts == s.negative_cuts
        assert b.positive_cuts == s.positive_cuts
        assert b.searches == s.searches

    def test_accepts_numpy_input(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        pairs = np.array([(0, 7), (7, 0), (3, 3)])
        assert query_batch(index, pairs).tolist() == [True, False, True]


class TestQueryManyDispatch:
    """FelineIndex.query_many routes through the vectorized batch path."""

    def test_query_many_matches_query_batch(self):
        g = random_dag(100, avg_degree=2.0, seed=5)
        pairs = random_pairs(g, 1000, seed=6)
        a = FelineIndex(g).build()
        b = FelineIndex(g).build()
        assert a.query_many(pairs) == query_batch(b, pairs).tolist()
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_query_many_returns_list_of_bools(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        answers = index.query_many([(0, 7), (7, 0)])
        assert isinstance(answers, list)
        assert all(isinstance(a, bool) for a in answers)

    def test_query_many_counts_stats_once(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        index.query_many([(0, 7), (7, 0), (3, 3)])
        assert index.stats.queries == 3

    def test_query_batch_is_backcompat_wrapper(self):
        assert "deprecated" in query_batch.__doc__.lower()
        from repro.core.batch import feline_query_many

        g = random_dag(50, avg_degree=2.0, seed=7)
        index = FelineIndex(g).build()
        pairs = random_pairs(g, 200, seed=8)
        assert np.array_equal(
            query_batch(index, pairs), feline_query_many(index, pairs)
        )
