"""The paper's own worked examples, verified against our implementation.

Section 3.2 walks Algorithm 1 through the Figure 2 DAG step by step;
Figures 3 and 4 make specific claims about dominance and falsely implied
paths.  These tests pin our implementation to that prose.

Vertex naming: a..h = 0..7, edges as in Figure 2(A):
a→c, a→d, c→e, d→e, e→h, b→f, b→g, f→h.
"""

from array import array

import pytest

from repro.core.heuristics import compute_y_order
from repro.core.index import build_feline_index
from repro.core.query import FelineIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import crown_graph
from repro.core.analysis import count_false_positives

A, B, C, D, E, F, G, H = range(8)
NAMES = "abcdefgh"


@pytest.fixture
def fig2_dag(paper_dag) -> DiGraph:
    return paper_dag


class TestSection32Walkthrough:
    """§3.2: 'A DFS-based topological ordering can generate the set X
    with the vertices {a, c, d, e, b, f, h, g} associated with x
    coordinates with rank values from 1 to 8. ... roots set with {a, b}
    ... chooses the root vertex b (with the rank value 5) ... updated
    with the new roots f and g ... as g has the higher rank ... inserted
    into the second position of Y ... The vertex f is the next chosen
    and Y = {b, g, f}.'"""

    # The paper's X ordering (1-based ranks 1..8 -> 0-based 0..7).
    PAPER_X_ORDER = [A, C, D, E, B, F, H, G]

    def _paper_x_ranks(self) -> array:
        ranks = array("l", [0] * 8)
        for rank, v in enumerate(self.PAPER_X_ORDER):
            ranks[v] = rank
        return ranks

    def test_paper_x_order_is_topological(self, fig2_dag):
        from repro.graph.toposort import is_topological_order

        assert is_topological_order(fig2_dag, self.PAPER_X_ORDER)

    def test_y_heuristic_reproduces_the_papers_prefix(self, fig2_dag):
        y_order = compute_y_order(
            fig2_dag, self._paper_x_ranks(), heuristic="max-x"
        )
        assert y_order[:3] == [B, G, F], [NAMES[v] for v in y_order]

    def test_full_y_order_continues_consistently(self, fig2_dag):
        """After {b, g, f}, the remaining roots evolve as {a}, then
        {c, d}, etc.; the max-x rule keeps picking the highest X rank:
        a(1) -> roots {c(2), d(3)}: d, then c, then e(4), then h(7)."""
        y_order = compute_y_order(
            fig2_dag, self._paper_x_ranks(), heuristic="max-x"
        )
        assert y_order == [B, G, F, A, D, C, E, H]


class TestFigure3Claims:
    """Figure 3: 'for r(a, h) we necessarily have i(a) ≼ i(h)' and
    'd is not in the upper-right quadrant of b ... d is not reachable
    from b'."""

    def test_reachable_pair_dominates(self, fig2_dag):
        coords = build_feline_index(fig2_dag)
        assert coords.dominates(A, H)

    def test_b_does_not_dominate_unreachable_or_vice_versa(self, fig2_dag):
        # The paper uses a specific drawing; ours may differ, but the
        # contrapositive of Theorem 1 must hold in every drawing:
        # whenever dominance fails, reachability must be absent.
        coords = build_feline_index(fig2_dag)
        from repro.graph.traversal import dfs_reachable

        for u in range(8):
            for v in range(8):
                if not coords.dominates(u, v):
                    assert not dfs_reachable(fig2_dag, u, v)

    def test_false_positives_never_leak_into_answers(self, fig2_dag):
        """Figure 3's point: some pairs dominate without being reachable
        (the figure's exact pair depends on the original's edge set,
        which the text does not fully specify — our reconstruction may
        place the falsely implied pair elsewhere).  What must hold in
        any drawing: every dominating-but-unreachable pair is still
        answered *false*, via the refined search."""
        from repro.graph.traversal import dfs_reachable

        coords = build_feline_index(fig2_dag)
        index = FelineIndex(fig2_dag).build()
        for u in range(8):
            for v in range(8):
                if coords.dominates(u, v) and not dfs_reachable(
                    fig2_dag, u, v
                ):
                    assert not index.query(u, v), (NAMES[u], NAMES[v])


class TestFigure4CrownClaims:
    """Figure 4: the crown S⁰ₖ 'do[es] not admit a 2D index which is
    free of false-positives'."""

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_any_drawing_of_the_crown_has_false_positives(self, k):
        g = crown_graph(k)
        for heuristic in ("max-x", "min-x", "fifo", "random"):
            coords = build_feline_index(
                g,
                y_heuristic=heuristic,
                with_level_filter=False,
                with_positive_cut=False,
            )
            assert count_false_positives(g, coords) > 0, heuristic

    def test_queries_on_the_crown_remain_exact(self):
        index = FelineIndex(crown_graph(4)).build()
        # a_i reaches b_j exactly when i != j.
        for i in range(4):
            for j in range(4):
                assert index.query(i, 4 + j) == (i != j)
