"""Unit tests for the simulated distributed FELINE."""

import pytest

from repro.core.distributed import SimulatedCluster
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import crown_graph, path_graph, random_dag

from tests.conftest import all_pairs, reachability_oracle


class TestSetup:
    def test_invalid_shard_count(self, paper_dag):
        with pytest.raises(ReproError):
            SimulatedCluster(paper_dag, num_shards=0)

    def test_shards_cover_all_vertices(self):
        g = random_dag(200, avg_degree=2.0, seed=1)
        cluster = SimulatedCluster(g, num_shards=5)
        assert sum(cluster.shard_sizes()) == 200

    def test_slabs_are_contiguous_in_x(self):
        g = random_dag(200, avg_degree=2.0, seed=1)
        cluster = SimulatedCluster(g, num_shards=5)
        x = cluster.coords.x
        for u in range(200):
            for v in range(200):
                if x[u] < x[v]:
                    assert cluster.shard_of(u) <= cluster.shard_of(v)

    def test_more_shards_than_vertices_clamped(self):
        cluster = SimulatedCluster(DiGraph(3, [(0, 1)]), num_shards=10)
        assert cluster.num_shards == 3

    def test_balanced_sizes(self):
        g = random_dag(400, avg_degree=1.5, seed=2)
        sizes = SimulatedCluster(g, num_shards=4).shard_sizes()
        assert max(sizes) - min(sizes) <= 1


class TestCorrectness:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_matches_oracle_on_zoo(self, any_dag, num_shards):
        cluster = SimulatedCluster(any_dag, num_shards=num_shards)
        oracle = reachability_oracle(any_dag)
        for u, v in all_pairs(any_dag):
            assert cluster.query(u, v) == oracle(u, v), (u, v)

    def test_crown_cross_shard_correct(self):
        g = crown_graph(8)
        cluster = SimulatedCluster(g, num_shards=4)
        oracle = reachability_oracle(g)
        for u, v in all_pairs(g):
            assert cluster.query(u, v) == oracle(u, v)

    def test_single_shard_equals_plain_feline(self):
        from repro.core.query import FelineIndex

        g = random_dag(120, avg_degree=2.5, seed=3)
        cluster = SimulatedCluster(g, num_shards=1)
        plain = FelineIndex(g).build()
        for u, v in all_pairs(g)[:4000]:
            assert cluster.query(u, v) == plain.query(u, v)


class TestCostModel:
    def test_negative_cuts_cost_no_messages(self):
        g = random_dag(300, avg_degree=1.0, seed=4)
        cluster = SimulatedCluster(g, num_shards=4)
        cluster.stats.reset(cluster.num_shards)
        for u, v in all_pairs(g)[:3000]:
            cluster.query(u, v)
        # Sparse random pairs: the dominance cut answers most queries
        # with zero communication.
        assert cluster.stats.negative_cuts > 0
        assert cluster.stats.messages < cluster.stats.queries

    def test_single_shard_never_messages(self):
        g = random_dag(150, avg_degree=3.0, seed=5)
        cluster = SimulatedCluster(g, num_shards=1)
        for u, v in all_pairs(g)[:3000]:
            cluster.query(u, v)
        assert cluster.stats.messages == 0

    def test_path_across_shards_messages(self):
        # A 40-vertex path over 4 shards: querying end to end must cross
        # shard boundaries (positive-cut disabled cannot happen here, so
        # pick endpoints NOT connected by the spanning tree shortcut: on
        # a path the tree answers it, so check messages via a crown).
        g = crown_graph(20)
        cluster = SimulatedCluster(g, num_shards=5)
        for u, v in all_pairs(g):
            cluster.query(u, v)
        assert cluster.stats.rounds >= 1

    def test_expansion_counters_populated(self):
        g = random_dag(200, avg_degree=3.0, seed=6)
        cluster = SimulatedCluster(g, num_shards=3)
        for u, v in all_pairs(g)[:5000]:
            cluster.query(u, v)
        assert sum(cluster.stats.expansions_per_shard) > 0

    def test_stats_reset(self):
        g = random_dag(50, avg_degree=2.0, seed=7)
        cluster = SimulatedCluster(g, num_shards=2)
        cluster.query(0, 49)
        cluster.stats.reset(cluster.num_shards)
        assert cluster.stats.queries == 0
        assert cluster.stats.expansions_per_shard == [0, 0]


class TestReprAndEdgeCases:
    def test_repr(self):
        g = random_dag(50, avg_degree=1.0, seed=8)
        cluster = SimulatedCluster(g, num_shards=2)
        assert "shards=2" in repr(cluster)

    def test_reflexive_query(self):
        g = random_dag(30, avg_degree=1.0, seed=9)
        cluster = SimulatedCluster(g, num_shards=3)
        assert cluster.query(5, 5)

    def test_positive_cut_avoids_search(self):
        from repro.graph.generators import path_graph

        cluster = SimulatedCluster(path_graph(40), num_shards=4)
        cluster.stats.reset(cluster.num_shards)
        assert cluster.query(0, 39)  # tree interval answers in O(1)
        assert cluster.stats.rounds == 0
