"""Tests for the stable ``repro.api`` surface."""

import pytest

import repro
from repro import api
from repro.resilience import QueryBudget
from repro.serve import ReachResult


EDGES = [(0, 1), (1, 2), (3, 2)]


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_package_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_api_reachability_is_the_facade(self):
        assert api.Reachability is repro.Reachability

    def test_serve_types_reexported(self):
        from repro.serve import ReachServer, ServeConfig

        assert api.ReachServer is ReachServer
        assert api.ServeConfig is ServeConfig

    def test_persistence_reexported(self):
        from repro.core.persistence import load_index, save_index

        assert api.save_index is save_index
        assert api.load_index is load_index


class TestBuildIndex:
    def test_builds_from_edges(self):
        oracle = api.build_index(EDGES)
        assert isinstance(oracle, repro.Reachability)
        assert oracle.reachable(0, 2) is True
        assert oracle.reachable(2, 0) is False

    def test_builds_from_digraph(self):
        oracle = api.build_index(api.DiGraph(4, EDGES))
        assert oracle.reachable(3, 2) is True

    def test_method_parameter(self):
        oracle = api.build_index(EDGES, method="grail")
        assert oracle.index.method_name == "grail"


class TestReachHelpers:
    def test_reach_returns_typed_result(self):
        oracle = api.build_index(EDGES)
        result = api.reach(oracle, 0, 2)
        assert isinstance(result, ReachResult)
        assert result.u == 0 and result.v == 2
        assert result.answer is True
        assert result.verdict == "reachable"
        assert not result.unknown

    def test_reach_many_aligned(self):
        oracle = api.build_index(EDGES)
        results = api.reach_many(oracle, [(0, 2), (2, 0), (3, 3)])
        assert [r.verdict for r in results] == [
            "reachable", "unreachable", "reachable"
        ]
        assert [(r.u, r.v) for r in results] == [(0, 2), (2, 0), (3, 3)]

    def test_as_dict_is_json_safe(self):
        import json

        oracle = api.build_index(EDGES)
        doc = api.reach(oracle, 0, 2).as_dict()
        assert json.loads(json.dumps(doc)) == {
            "u": 0, "v": 2, "answer": True, "verdict": "reachable"
        }

    def test_verdict_of_rejects_non_ternary(self):
        with pytest.raises(TypeError):
            api.verdict_of("yes")

    def test_budget_degradation_is_typed_unknown(self):
        # A chain long enough that a 1-step budget cannot finish the
        # positive searches the cuts leave undecided.
        n = 64
        oracle = api.build_index(
            [(i, i + 1) for i in range(n - 1)]
            + [(i, i + 2) for i in range(n - 2)]
        )
        budget = QueryBudget(max_steps=1, policy="unknown")
        results = api.reach_many(
            oracle, [(0, n - 1), (n - 1, 0)], budget=budget
        )
        unknowns = [r for r in results if r.unknown]
        for result in unknowns:
            assert result.answer is None
            assert result.verdict == "unknown"
        # Degraded or not, nothing may be answered wrongly.
        for result in results:
            if not result.unknown:
                truth = oracle.reachable(result.u, result.v)
                assert result.answer is truth
