"""The fault-injection harness: every injected fault is detected or
survived — never a silent wrong answer."""

from __future__ import annotations

import pytest

from repro.core.distributed import SimulatedCluster
from repro.core.query import FelineIndex
from repro.exceptions import WorkerError
from repro.graph.generators import random_dag
from repro.resilience import RetryPolicy, chaos
from repro.resilience.chaos import (
    FlakyWorker,
    InjectedFault,
    SlowWorker,
    injected,
)
from tests.conftest import reachability_oracle


@pytest.fixture(autouse=True)
def _clean_hooks():
    chaos.clear()
    yield
    chaos.clear()


class TestHookPoints:
    def test_fire_without_hooks_is_noop(self):
        chaos.fire("nonexistent.point", anything=1)

    def test_injected_context_manager(self):
        with injected("some.point"):
            assert chaos.active_hooks() == ["some.point"]
            with pytest.raises(InjectedFault) as excinfo:
                chaos.fire("some.point")
            assert excinfo.value.point == "some.point"
        assert chaos.active_hooks() == []

    def test_custom_hook_receives_context(self):
        seen = {}
        chaos.install("p", lambda **ctx: seen.update(ctx))
        chaos.fire("p", a=1, b="x")
        assert seen == {"a": 1, "b": "x"}
        chaos.uninstall("p")

    def test_build_hook_point(self, paper_dag):
        with injected("index.build.start"):
            with pytest.raises(InjectedFault):
                FelineIndex(paper_dag).build()
        # After the fault, a clean build still works.
        assert FelineIndex(paper_dag).build().query(0, 4) is True

    def test_persistence_hook_points(self, paper_dag, tmp_path):
        from repro.core.persistence import load_coordinates, save_coordinates

        index = FelineIndex(paper_dag).build()
        target = tmp_path / "idx.feline"
        with injected("persistence.save"):
            with pytest.raises(InjectedFault):
                save_coordinates(index.coordinates, target)
        save_coordinates(index.coordinates, target)
        with injected("persistence.load.section"):
            with pytest.raises(InjectedFault):
                load_coordinates(target)


class TestCorruptors:
    def test_corrupt_is_pure(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        before = list(index.coordinates.x)
        chaos.corrupt_coordinates(index.coordinates, seed=0)
        assert list(index.coordinates.x) == before

    def test_corrupt_is_deterministic(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        a = chaos.corrupt_coordinates(index.coordinates, seed=5)
        b = chaos.corrupt_coordinates(index.coordinates, seed=5)
        assert list(a.x) == list(b.x) and list(a.y) == list(b.y)

    def test_flip_bytes_deterministic(self, tmp_path):
        f1 = tmp_path / "a.bin"
        f2 = tmp_path / "b.bin"
        f1.write_bytes(bytes(range(256)))
        f2.write_bytes(bytes(range(256)))
        assert chaos.flip_bytes(f1, seed=3) == chaos.flip_bytes(f2, seed=3)
        assert f1.read_bytes() == f2.read_bytes()

    def test_truncate_file(self, tmp_path):
        f = tmp_path / "t.bin"
        f.write_bytes(b"0123456789")
        chaos.truncate_file(f, 4)
        assert f.read_bytes() == b"0123"


class TestRetryPolicy:
    def test_retries_transient_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise WorkerError("boom", transient=True)
            return "ok"

        policy = RetryPolicy(max_attempts=3, seed=1)
        assert policy.call(flaky) == "ok"
        assert policy.retries == 2
        assert policy.total_delay_s >= 0.0

    def test_non_transient_fails_fast(self):
        def fatal():
            raise WorkerError("dead", transient=False)

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(WorkerError):
            policy.call(fatal)
        assert policy.retries == 0

    def test_exhausted_retries_propagate(self):
        def always():
            raise WorkerError("still down", transient=True)

        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(WorkerError):
            policy.call(always)
        assert policy.retries == 1

    def test_backoff_is_seeded(self):
        a = RetryPolicy(seed=9)
        b = RetryPolicy(seed=9)
        assert [a.backoff(i) for i in range(3)] == [
            b.backoff(i) for i in range(3)
        ]

    def test_backoff_respects_ceiling(self):
        policy = RetryPolicy(
            base_delay_s=0.5, multiplier=10.0, max_delay_s=1.0, seed=2
        )
        for i in range(6):
            assert policy.backoff(i) <= 1.0

    def test_recorded_sleep(self):
        slept = []
        policy = RetryPolicy(seed=0, sleep=slept.append)
        delay = policy.backoff(0)
        assert slept == [delay]


class TestClusterFaults:
    def make_cluster(self, **kwargs):
        graph = random_dag(200, avg_degree=2.0, seed=7)
        return graph, SimulatedCluster(graph, num_shards=4, **kwargs)

    def test_flaky_worker_survived(self):
        graph, cluster = self.make_cluster()
        cluster.workers = [FlakyWorker(w, fail_times=1) for w in cluster.workers]
        oracle = reachability_oracle(graph)
        for u in range(0, 200, 13):
            for v in range(0, 200, 17):
                assert cluster.query(u, v) == oracle(u, v), (u, v)
        assert cluster.stats.worker_failures > 0
        assert cluster.stats.retries >= cluster.stats.worker_failures > 0

    def test_worker_outage_surfaces_not_silences(self):
        graph, cluster = self.make_cluster(
            retry_policy=RetryPolicy(max_attempts=2)
        )
        # More failures than the retry budget: the query must fail loudly.
        cluster.workers = [
            FlakyWorker(w, fail_times=10) for w in cluster.workers
        ]
        with pytest.raises(WorkerError):
            # A cross-shard positive query must dispatch to some worker.
            for u in range(200):
                cluster.query(u, (u + 97) % 200)

    def test_slow_worker_accumulates_delay(self):
        graph, cluster = self.make_cluster()
        cluster.workers = [
            SlowWorker(w, delay_s=0.01) for w in cluster.workers
        ]
        oracle = reachability_oracle(graph)
        for u in range(0, 200, 29):
            for v in range(0, 200, 31):
                assert cluster.query(u, v) == oracle(u, v)
        assert sum(w.simulated_delay_s for w in cluster.workers) > 0

    def test_expand_hook_fires(self):
        graph, cluster = self.make_cluster()
        fired = []
        chaos.install(
            "distributed.expand", lambda **ctx: fired.append(ctx["shard_id"])
        )
        for u in range(0, 200, 41):
            cluster.query(u, (u + 83) % 200)
        chaos.uninstall("distributed.expand")
        assert fired  # at least one dispatch went through the hook

    def test_injected_transient_fault_at_dispatch_is_retried(self):
        graph, cluster = self.make_cluster()
        state = {"left": 2}

        def hook(**ctx):
            if state["left"] > 0:
                state["left"] -= 1
                raise WorkerError(
                    "chaos dispatch", shard_id=ctx["shard_id"], transient=True
                )

        chaos.install("distributed.expand", hook)
        oracle = reachability_oracle(graph)
        try:
            for u in range(0, 200, 19):
                for v in range(0, 200, 23):
                    assert cluster.query(u, v) == oracle(u, v)
        finally:
            chaos.uninstall("distributed.expand")
        assert state["left"] == 0
        assert cluster.stats.retries >= 2
