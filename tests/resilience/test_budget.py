"""Query budgets and graceful degradation across every search-based index."""

from __future__ import annotations

import pytest

from repro import Reachability
from repro.baselines.base import create_index
from repro.exceptions import (
    InvalidVertexError,
    QueryBudgetExceeded,
    ReproError,
)
from repro.graph.generators import path_graph, random_dag
from repro.obs import disable_metrics, enable_metrics
from repro.resilience import POLICIES, UNKNOWN, QueryBudget
from tests.conftest import reachability_oracle

# Search-based methods whose DFS a deep path forces into the guard.
# FERRARI is covered separately: its interval set answers a path exactly
# in O(log k), so its search only triggers on fragmented reachable sets.
# Label-only methods (tc, interval, tf-label, ...) answer in O(label)
# and cannot trip a step guard.
SEARCH_METHODS = [
    "feline", "feline-i", "feline-b", "feline-k",
    "grail", "dfs", "bfs", "bibfs",
]


def adversarial_graph():
    """A deep path with no filters: every positive query must search."""
    return path_graph(600)


def ferrari_adversarial():
    """A random DAG + 1-interval budget: approximate coverage forces the
    FERRARI DFS (pair (15, 492) expands ~77 vertices unbudgeted)."""
    graph = random_dag(600, avg_degree=2.0, seed=3)
    index = create_index(
        "ferrari",
        graph,
        max_intervals=1,
        use_level_filter=False,
        use_positive_cut=False,
    ).build()
    return index


def build(method, graph, **params):
    if method in (
        "feline", "feline-i", "feline-b", "grail", "ferrari", "feline-k"
    ):
        params.setdefault("use_level_filter", False)
        params.setdefault("use_positive_cut", False)
    return create_index(method, graph, **params).build()


class TestQueryBudgetValidation:
    def test_needs_some_limit(self):
        with pytest.raises(ReproError):
            QueryBudget()

    def test_rejects_bad_policy(self):
        with pytest.raises(ReproError):
            QueryBudget(max_steps=10, policy="shrug")

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ReproError):
            QueryBudget(max_steps=0)
        with pytest.raises(ReproError):
            QueryBudget(deadline_s=0.0)

    def test_policies_constant(self):
        assert POLICIES == ("raise", "unknown", "fallback")

    def test_fallback_nodes_resolution(self):
        assert QueryBudget(max_steps=100).resolved_fallback_nodes == 400
        assert QueryBudget(deadline_s=1.0).resolved_fallback_nodes == 4096
        assert (
            QueryBudget(max_steps=10, fallback_nodes=7).resolved_fallback_nodes
            == 7
        )


class TestUnknownSentinel:
    def test_refuses_bool(self):
        with pytest.raises(TypeError):
            bool(UNKNOWN)

    def test_singleton(self):
        import pickle

        from repro.resilience import Ternary

        assert Ternary() is UNKNOWN
        assert pickle.loads(pickle.dumps(UNKNOWN)) is UNKNOWN

    def test_repr(self):
        assert repr(UNKNOWN) == "UNKNOWN"


class TestRaisePolicy:
    @pytest.mark.parametrize("method", SEARCH_METHODS)
    def test_deep_search_raises(self, method):
        index = build(method, adversarial_graph())
        budget = QueryBudget(max_steps=5, policy="raise")
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            index.query(0, 599, budget=budget)
        assert excinfo.value.resource == "steps"
        assert excinfo.value.steps > 5
        assert index.stats.budget_exhausted == 1

    def test_ferrari_search_raises(self):
        index = ferrari_adversarial()
        budget = QueryBudget(max_steps=5, policy="raise")
        with pytest.raises(QueryBudgetExceeded):
            index.query(15, 492, budget=budget)
        assert index.stats.budget_exhausted == 1

    def test_guard_cleared_after_exhaustion(self):
        index = build("feline", adversarial_graph())
        with pytest.raises(QueryBudgetExceeded):
            index.query(0, 599, budget=QueryBudget(max_steps=5))
        # The next unbudgeted query must run unguarded and answer exactly.
        assert index._guard is None
        assert index.query(0, 599) is True


class TestUnknownPolicy:
    @pytest.mark.parametrize("method", SEARCH_METHODS)
    def test_deep_search_degrades_to_unknown(self, method):
        index = build(method, adversarial_graph())
        budget = QueryBudget(max_steps=5, policy="unknown")
        assert index.query(0, 599, budget=budget) is UNKNOWN
        assert index.stats.unknowns == 1

    def test_ferrari_search_degrades_to_unknown(self):
        index = ferrari_adversarial()
        budget = QueryBudget(max_steps=5, policy="unknown")
        assert index.query(15, 492, budget=budget) is UNKNOWN
        assert index.stats.unknowns == 1

    def test_cheap_queries_unaffected(self):
        graph = adversarial_graph()
        index = build("feline", graph)
        budget = QueryBudget(max_steps=5, policy="unknown")
        # Negative cut answers without any search; reflexivity likewise.
        assert index.query(599, 0, budget=budget) is False
        assert index.query(5, 5, budget=budget) is True


class TestFallbackPolicy:
    def test_fallback_answers_exactly_when_affordable(self):
        graph = adversarial_graph()
        index = build("feline", graph)
        budget = QueryBudget(
            max_steps=5, policy="fallback", fallback_nodes=10_000
        )
        assert index.query(0, 599, budget=budget) is True
        assert index.stats.fallbacks == 1
        assert index.stats.unknowns == 0

    def test_fallback_cap_degrades_to_unknown(self):
        graph = adversarial_graph()
        index = build("feline", graph)
        budget = QueryBudget(max_steps=5, policy="fallback", fallback_nodes=8)
        assert index.query(0, 599, budget=budget) is UNKNOWN
        assert index.stats.fallbacks == 1
        assert index.stats.unknowns == 1

    def test_fallback_false_is_definitive(self):
        # Two disjoint deep paths: fallback biBFS drains the small side.
        from repro.graph.digraph import DiGraph

        edges = [(i, i + 1) for i in range(299)]
        edges += [(300 + i, 300 + i + 1) for i in range(299)]
        graph = DiGraph(600, edges, name="two-paths")
        index = build("feline", graph)
        budget = QueryBudget(
            max_steps=2, policy="fallback", fallback_nodes=100_000
        )
        assert index.query(598, 0, budget=budget) is False


class TestBudgetedBatch:
    def test_query_many_mixed_answers(self):
        graph = adversarial_graph()
        index = build("feline", graph)
        budget = QueryBudget(max_steps=5, policy="unknown")
        answers = index.query_many(
            [(0, 599), (599, 0), (3, 3)], budget=budget
        )
        assert answers[0] is UNKNOWN
        assert answers[1] is False
        assert answers[2] is True

    def test_facade_budget(self):
        graph = adversarial_graph()
        oracle = Reachability(
            graph, use_level_filter=False, use_positive_cut=False
        )
        budget = QueryBudget(max_steps=5, policy="unknown")
        assert oracle.reachable(0, 599, budget=budget) is UNKNOWN
        answers = oracle.reachable_many([(0, 599), (599, 0)], budget=budget)
        assert answers[0] is UNKNOWN and answers[1] is False


class TestVertexValidationUniform:
    ALL_METHODS = SEARCH_METHODS + [
        "ferrari", "tc", "interval", "tf-label", "chain-cover",
        "dual-labeling",
    ]

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_out_of_range_raises_invalid_vertex(self, method, paper_dag):
        index = create_index(method, paper_dag).build()
        for u, v in [(-1, 0), (0, -1), (8, 0), (0, 8)]:
            with pytest.raises(InvalidVertexError):
                index.query(u, v)
        with pytest.raises(InvalidVertexError):
            index.query_many([(0, 1), (99, 0)])

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_reflexive_true_everywhere(self, method, paper_dag):
        index = create_index(method, paper_dag).build()
        for v in range(paper_dag.num_vertices):
            assert index.query(v, v) is True

    def test_facade_validates(self):
        oracle = Reachability([(0, 1), (1, 2)])
        with pytest.raises(InvalidVertexError) as excinfo:
            oracle.reachable(0, 99)
        assert excinfo.value.vertex == 99


class TestDeadlineBudget:
    def test_deadline_trips_on_slow_search(self):
        # An impossible deadline: the first stride of steps exceeds it.
        index = build("feline", adversarial_graph())
        budget = QueryBudget(deadline_s=1e-9, policy="unknown")
        answer = index.query(0, 599, budget=budget)
        # Path length 600 > clock stride 256, so the deadline is observed.
        assert answer is UNKNOWN
        assert index.stats.budget_exhausted == 1


class TestObservabilityCounters:
    def test_budget_counters_emitted(self):
        graph = adversarial_graph()
        registry = enable_metrics()
        try:
            index = build("feline", graph)
            budget = QueryBudget(max_steps=5, policy="unknown")
            assert index.query(0, 599, budget=budget) is UNKNOWN
            exhausted = registry.counter(
                "repro_budget_exhausted_total",
                method="feline",
                resource="steps",
                policy="unknown",
            )
            degraded = registry.counter(
                "repro_degraded_total",
                method="feline",
                outcome="unknown",
                policy="unknown",
            )
            assert exhausted.value == 1
            assert degraded.value == 1
        finally:
            disable_metrics()


class TestBudgetSoundnessSweep:
    """Every budgeted boolean equals the oracle on a random DAG."""

    @pytest.mark.parametrize("method", ["feline", "feline-b", "grail"])
    @pytest.mark.parametrize("policy", ["unknown", "fallback"])
    def test_booleans_match_oracle(self, method, policy):
        graph = random_dag(120, avg_degree=2.5, seed=11)
        index = build(method, graph)
        oracle = reachability_oracle(graph)
        budget = QueryBudget(max_steps=3, policy=policy, fallback_nodes=16)
        for u in range(0, 120, 7):
            for v in range(0, 120, 5):
                answer = index.query(u, v, budget=budget)
                if answer is not UNKNOWN:
                    assert answer == oracle(u, v), (method, policy, u, v)
