"""Crash-consistency of the persistence layer.

Every damaged file must either load back *exactly* right or raise a
structured :class:`PersistenceError` — never a raw ``struct.error`` /
numpy exception and never silently wrong coordinates.
"""

from __future__ import annotations

import pytest

from repro.core.persistence import (
    load_coordinates,
    load_index,
    save_coordinates,
    save_index,
)
from repro.core.query import FelineIndex
from repro.exceptions import ChecksumError, PersistenceError, ReproError
from repro.graph.generators import path_graph, random_dag
from repro.resilience import chaos


@pytest.fixture
def graph():
    return random_dag(80, avg_degree=2.0, seed=5)


@pytest.fixture
def saved(graph, tmp_path):
    index = FelineIndex(graph).build()
    path = tmp_path / "index.feline"
    save_coordinates(index.coordinates, path)
    return index, path


def coords_equal(a, b) -> bool:
    if list(a.x) != list(b.x) or list(a.y) != list(b.y):
        return False
    if (a.levels is None) != (b.levels is None):
        return False
    if a.levels is not None and list(a.levels) != list(b.levels):
        return False
    if (a.tree_intervals is None) != (b.tree_intervals is None):
        return False
    if a.tree_intervals is not None:
        if list(a.tree_intervals.start) != list(b.tree_intervals.start):
            return False
        if list(a.tree_intervals.post) != list(b.tree_intervals.post):
            return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("mmap", [False, True])
    def test_versions_round_trip(self, graph, tmp_path, version, mmap):
        index = FelineIndex(graph).build()
        path = tmp_path / f"v{version}.feline"
        save_coordinates(index.coordinates, path, version=version)
        loaded = load_coordinates(path, mmap=mmap)
        assert coords_equal(index.coordinates, loaded)

    def test_v1_files_stay_readable(self, graph, tmp_path):
        """Back-compat: a legacy v1 file loads without checksums."""
        index = FelineIndex(graph).build()
        path = tmp_path / "legacy.feline"
        save_coordinates(index.coordinates, path, version=1)
        assert path.read_bytes()[:8] == b"FELINEi1"
        restored = load_index(graph, path)
        assert restored.query(0, graph.num_vertices - 1) == index.query(
            0, graph.num_vertices - 1
        )

    def test_default_is_v2(self, saved):
        _, path = saved
        assert path.read_bytes()[:8] == b"FELINEi2"

    def test_unsupported_version_rejected(self, graph, tmp_path):
        index = FelineIndex(graph).build()
        with pytest.raises(PersistenceError):
            save_coordinates(
                index.coordinates, tmp_path / "x.feline", version=3
            )


class TestTruncationSweep:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_every_truncation_detected(self, saved, tmp_path, mmap):
        _, path = saved
        size = path.stat().st_size
        blob = path.read_bytes()
        # Sampled prefix lengths incl. the tricky boundaries: empty file,
        # mid-magic, end-of-magic, mid-header, each section edge.
        cuts = {0, 3, 8, 12, 24, size // 3, size // 2, size - 8, size - 1}
        for cut in sorted(c for c in cuts if 0 <= c < size):
            target = tmp_path / f"cut{cut}.feline"
            target.write_bytes(blob[:cut])
            with pytest.raises(PersistenceError) as excinfo:
                load_coordinates(target, mmap=mmap)
            # Structured context: path always, and never a raw struct error.
            assert excinfo.value.path is not None

    def test_empty_file(self, tmp_path):
        target = tmp_path / "empty.feline"
        target.write_bytes(b"")
        with pytest.raises(PersistenceError) as excinfo:
            load_coordinates(target)
        assert excinfo.value.offset == 0

    def test_wrong_magic(self, tmp_path):
        target = tmp_path / "not.feline"
        target.write_bytes(b"NOTANIDX" + b"\0" * 64)
        with pytest.raises(PersistenceError) as excinfo:
            load_coordinates(target)
        assert "bad magic" in str(excinfo.value)

    def test_v1_truncation_detected(self, graph, tmp_path):
        index = FelineIndex(graph).build()
        path = tmp_path / "v1.feline"
        save_coordinates(index.coordinates, path, version=1)
        chaos.truncate_file(path, path.stat().st_size - 16)
        with pytest.raises(PersistenceError) as excinfo:
            load_coordinates(path)
        assert "truncated" in str(excinfo.value)


class TestBitFlipSweep:
    @pytest.mark.parametrize("seed", range(20))
    def test_flip_detected_or_harmless(self, saved, tmp_path, seed):
        """v2 checksums: any flipped bit is either caught at load time or
        the load fails structurally — reading back wrong data silently is
        the one forbidden outcome."""
        index, path = saved
        target = tmp_path / f"flip{seed}.feline"
        target.write_bytes(path.read_bytes())
        chaos.flip_bytes(target, seed=seed, flips=1)
        try:
            loaded = load_coordinates(target)
        except ReproError:
            return  # detected: bad magic, bad header, or checksum mismatch
        # Load succeeded: the flip must not have changed any payload.
        assert coords_equal(index.coordinates, loaded), (
            f"seed {seed}: bit flip survived into loaded coordinates"
        )

    def test_section_flip_names_section(self, saved, tmp_path):
        _, path = saved
        size = path.stat().st_size
        blob = bytearray(path.read_bytes())
        blob[size - 4] ^= 0xFF  # last section's payload (the 'post' array)
        target = tmp_path / "damaged.feline"
        target.write_bytes(bytes(blob))
        with pytest.raises(ChecksumError) as excinfo:
            load_coordinates(target)
        assert excinfo.value.section == "post"
        assert excinfo.value.offset is not None

    def test_header_flip_detected(self, saved, tmp_path):
        _, path = saved
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0x01  # inside the n field
        target = tmp_path / "hdr.feline"
        target.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError):
            load_coordinates(target)


class TestStructuredErrors:
    def test_save_unbuilt_index(self, graph, tmp_path):
        with pytest.raises(PersistenceError) as excinfo:
            save_index(FelineIndex(graph), tmp_path / "x.feline")
        assert "unbuilt" in str(excinfo.value)

    def test_vertex_count_mismatch(self, saved):
        _, path = saved
        with pytest.raises(PersistenceError) as excinfo:
            load_index(path_graph(3), path)
        assert "vertices" in str(excinfo.value)

    def test_unknown_flags_rejected(self, saved, tmp_path):
        import struct
        import zlib

        _, path = saved
        blob = bytearray(path.read_bytes())
        n, _flags = struct.unpack("<QQ", blob[8:24])
        blob[16:24] = struct.pack("<Q", 0xFF)
        # Re-seal the header CRC so the flag check (not the CRC) fires.
        blob[24:28] = struct.pack("<I", zlib.crc32(bytes(blob[:24])))
        target = tmp_path / "flags.feline"
        target.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError) as excinfo:
            load_coordinates(target)
        assert "flag" in str(excinfo.value)
