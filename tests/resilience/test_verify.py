"""verify_index: clean indexes pass; injected corruption is caught."""

from __future__ import annotations

import pytest

from repro.core.index import build_feline_index
from repro.core.query import FelineIndex
from repro.exceptions import IndexIntegrityError
from repro.graph.generators import path_graph, random_dag
from repro.resilience import chaos, verify_index


class TestCleanIndexesPass:
    def test_built_index_verifies(self, any_dag):
        index = FelineIndex(any_dag).build()
        report = verify_index(any_dag, index)
        assert report.ok, report.summary()

    def test_accepts_raw_coordinates(self, paper_dag):
        coords = build_feline_index(paper_dag)
        assert verify_index(paper_dag, coords).ok

    def test_no_filters_variant(self, paper_dag):
        coords = build_feline_index(
            paper_dag, with_level_filter=False, with_positive_cut=False
        )
        report = verify_index(paper_dag, coords)
        assert report.ok

    def test_raise_if_failed_is_noop_when_ok(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        verify_index(paper_dag, index).raise_if_failed()

    def test_summary_mentions_mode(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        assert "exhaustive" in verify_index(paper_dag, index).summary()


class TestDetectsCorruption:
    @pytest.mark.parametrize("seed", range(12))
    def test_seeded_corruption_caught(self, seed):
        graph = random_dag(150, avg_degree=2.0, seed=3)
        index = FelineIndex(graph).build()
        damaged = chaos.corrupt_coordinates(
            index.coordinates, seed=seed, mutations=2
        )
        report = verify_index(graph, damaged)
        # A mutation may occasionally be a no-op swap of equal values,
        # but with 2 mutations on permutation arrays it is detectable.
        assert not report.ok, (
            f"seed {seed}: corruption not detected\n{report.summary()}"
        )

    def test_raise_if_failed_raises(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        damaged = chaos.corrupt_coordinates(index.coordinates, seed=1)
        report = verify_index(paper_dag, damaged)
        if not report.ok:
            with pytest.raises(IndexIntegrityError) as excinfo:
                report.raise_if_failed()
            assert excinfo.value.violations

    def test_vertex_count_mismatch(self, paper_dag):
        other = path_graph(4)
        coords = build_feline_index(other)
        report = verify_index(paper_dag, coords)
        assert not report.ok
        assert "vertices" in report.violations[0]

    def test_unbuilt_index_fails(self, paper_dag):
        report = verify_index(paper_dag, FelineIndex(paper_dag))
        assert not report.ok


class TestModes:
    def test_sampled_mode_on_clean_index(self):
        graph = random_dag(200, avg_degree=2.0, seed=9)
        index = FelineIndex(graph).build()
        report = verify_index(graph, index, mode="sample", sample=50, seed=4)
        assert report.ok
        assert report.mode.startswith("sampled")
        assert 0 < report.edges_checked <= 50

    def test_sampling_is_deterministic(self):
        graph = random_dag(200, avg_degree=2.0, seed=9)
        index = FelineIndex(graph).build()
        r1 = verify_index(graph, index, mode="sample", sample=30, seed=7)
        r2 = verify_index(graph, index, mode="sample", sample=30, seed=7)
        assert r1.edges_checked == r2.edges_checked
        assert r1.ok and r2.ok

    def test_unknown_mode_rejected(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        with pytest.raises(ValueError):
            verify_index(paper_dag, index, mode="psychic")

    def test_deep_sweep_flag(self, paper_dag):
        index = FelineIndex(paper_dag).build()
        assert verify_index(paper_dag, index, deep=True).deep
        assert not verify_index(paper_dag, index, deep=False).deep
