"""Unit tests for the bounded slow-query log (threshold + reservoir)."""

import pytest

from repro.baselines.base import create_index
from repro.graph.digraph import DiGraph
from repro.obs.slowlog import SlowQueryLog
from repro.resilience import UNKNOWN


class TestThresholdMode:
    def test_fast_queries_dropped(self):
        log = SlowQueryLog(threshold_ns=1000)
        assert log.record(0, 1, True, 999, "feline") is None
        rec = log.record(0, 2, False, 1000, "feline")
        assert rec is not None and rec.elapsed_ns == 1000
        assert len(log) == 1
        assert log.observed == 2

    def test_ring_buffer_evicts_oldest(self):
        log = SlowQueryLog(capacity=3, threshold_ns=0)
        for i in range(5):
            log.record(i, i + 1, True, 100 + i, "feline")
        assert [r.u for r in log.records()] == [2, 3, 4]
        assert log.observed == 5

    def test_slowest_sorts_descending(self):
        log = SlowQueryLog(threshold_ns=0)
        for i, ns in enumerate([50, 900, 200]):
            log.record(i, i, True, ns, "feline")
        assert [r.elapsed_ns for r in log.slowest(2)] == [900, 200]

    def test_clear_keeps_observed(self):
        log = SlowQueryLog(threshold_ns=0)
        log.record(0, 1, True, 10, "feline")
        log.clear()
        assert len(log) == 0
        assert log.observed == 1


class TestReservoirMode:
    def test_fills_then_stays_bounded(self):
        log = SlowQueryLog(capacity=10, mode="reservoir", seed=7)
        for i in range(1000):
            log.record(i, i, False, i, "feline")
        assert len(log) == 10
        assert log.observed == 1000
        # A uniform sample over [0, 1000) is overwhelmingly unlikely to
        # be the first ten offers.
        assert any(r.seq > 10 for r in log.records())

    def test_deterministic_under_seed(self):
        def sample(seed):
            log = SlowQueryLog(capacity=5, mode="reservoir", seed=seed)
            for i in range(200):
                log.record(i, i, True, i, "m")
            return [r.seq for r in log.records()]

        assert sample(3) == sample(3)

    def test_threshold_ignored_in_reservoir(self):
        log = SlowQueryLog(
            capacity=4, mode="reservoir", threshold_ns=10**9
        )
        log.record(0, 1, True, 1, "m")
        assert len(log) == 1


class TestValidationAndRecords:
    def test_rejects_bad_mode_and_capacity(self):
        with pytest.raises(ValueError):
            SlowQueryLog(mode="nope")
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_record_dict_is_json_ready(self):
        log = SlowQueryLog(threshold_ns=0)
        log.record(3, 4, UNKNOWN, 1500, "feline", cut="search")
        (payload,) = log.as_dicts()
        assert payload["verdict"] == "UNKNOWN"
        assert payload["elapsed_us"] == 1.5
        assert payload["cut"] == "search"


class TestIndexIntegration:
    def _graph(self):
        return DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])

    def test_scalar_queries_are_offered(self):
        index = create_index("feline", self._graph()).build()
        log = index.attach_slow_log(SlowQueryLog(threshold_ns=0))
        index.query(0, 3)
        index.query(3, 0)
        assert log.observed == 2
        verdicts = {(r.u, r.v): r.verdict for r in log.records()}
        assert verdicts == {(0, 3): True, (3, 0): False}

    def test_batches_logged_per_pair(self):
        index = create_index("feline", self._graph()).build()
        log = index.attach_slow_log(SlowQueryLog(threshold_ns=0))
        index.query_many([(0, 1), (0, 2), (1, 3)])
        assert log.observed == 3

    def test_detach_restores_fast_path(self):
        index = create_index("feline", self._graph()).build()
        index.attach_slow_log(SlowQueryLog(threshold_ns=0))
        index.attach_slow_log(None)
        assert index._hot_obs is None
        index.query(0, 3)
        assert index.slow_log is None
