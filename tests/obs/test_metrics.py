"""Unit tests for the metrics primitives and the registry."""

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c", {})
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_decrement_rejected(self):
        with pytest.raises(ValueError):
            Counter("c", {}).inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("g", {})
        g.set(10.5)
        g.inc(-0.5)
        assert g.value == 10.0


class TestHistogram:
    def test_counts_sum_min_max(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 105.0
        assert h.min == 0.5 and h.max == 100.0
        # buckets: <=1, <=2, <=4, +Inf
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_boundary_lands_in_lower_bucket(self):
        h = Histogram((1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_percentiles_single_value_exact(self):
        h = Histogram(LATENCY_BUCKETS_S)
        h.observe(3e-4)
        assert h.p50 == h.p95 == h.p99 == pytest.approx(3e-4)

    def test_percentiles_monotone(self):
        h = Histogram(LATENCY_BUCKETS_S)
        for k in range(1, 1001):
            h.observe(k * 1e-6)
        assert h.p50 <= h.p95 <= h.p99 <= h.max

    def test_percentile_tracks_distribution(self):
        h = Histogram(COUNT_BUCKETS)
        for _ in range(99):
            h.observe(3.0)
        h.observe(1000.0)
        assert h.p50 == pytest.approx(3.0, rel=0.5)
        assert h.p99 >= 3.0

    def test_empty_histogram(self):
        h = Histogram((1.0,))
        assert h.count == 0 and h.p50 == 0.0 and h.mean == 0.0

    def test_time_context_manager(self):
        h = Histogram(LATENCY_BUCKETS_S)
        with h.time():
            pass
        assert h.count == 1 and h.sum >= 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).percentile(1.5)


class TestRegistry:
    def test_instruments_memoized_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", method="feline")
        b = reg.counter("hits", method="feline")
        c = reg.counter("hits", method="grail")
        assert a is b and a is not c

    def test_kinds_do_not_collide(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        gauge = reg.gauge("x")
        assert counter is not gauge

    def test_phase_records_trace_and_histogram(self):
        reg = MetricsRegistry()
        with reg.phase("feline.build", "x-order"):
            pass
        events = list(reg.trace_log)
        assert len(events) == 1
        assert events[0].name == "feline.build"
        assert events[0].fields["phase"] == "x-order"
        assert events[0].duration_s >= 0.0
        hist = reg.histogram(
            "repro_build_phase_seconds", builder="feline.build", phase="x-order"
        )
        assert hist.count == 1

    def test_phase_records_even_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.phase("feline.build", "x-order"):
                raise RuntimeError("boom")
        assert len(list(reg.trace_log)) == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.001)
        reg.trace("event", note="hi")
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 1
        assert snap["gauges"]["g"] == 2
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["traces"][0]["note"] == "hi"


class TestNullRegistry:
    def test_disabled_and_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1.0)
        with reg.phase("x", "y"):
            pass
        assert reg.trace("e") is None
        assert reg.instruments() == []

    def test_null_instrument_shared(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.histogram("b")


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert not get_registry().enabled

    def test_enable_disable_roundtrip(self):
        reg = enable_metrics()
        try:
            assert get_registry() is reg and reg.enabled
        finally:
            disable_metrics()
        assert not get_registry().enabled

    def test_metrics_enabled_scoped(self):
        before = get_registry()
        with metrics_enabled() as reg:
            assert get_registry() is reg
        assert get_registry() is before

    def test_metrics_enabled_accepts_custom_registry(self):
        mine = MetricsRegistry()
        with metrics_enabled(mine) as reg:
            assert reg is mine
