"""Unit tests for hierarchical spans, the ambient parent, and exporters."""

import json
import threading

import pytest

from repro.obs.spans import (
    NullTracer,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    spans_to_chrome_trace,
    spans_to_jsonl,
    tracing_enabled,
    write_chrome_trace,
    write_spans_jsonl,
)


class TestSpanTree:
    def test_parent_links_follow_nesting(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        # Finish order is innermost-first.
        assert [s.name for s in tracer.spans()] == [
            "grandchild", "child", "sibling", "root",
        ]

    def test_ambient_span_restored_on_exit(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_attributes_and_exception_marker(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work", size=3) as span:
                span.set_attribute("verdict", True)
                raise ValueError("boom")
        finished = tracer.spans()[0]
        assert finished.attributes["size"] == 3
        assert finished.attributes["verdict"] is True
        assert finished.attributes["error"] == "ValueError"

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.end()
        first_end = span.end_ns
        span.end()
        assert span.end_ns == first_end
        assert tracer.total == 1

    def test_duration_never_negative(self):
        tracer = Tracer()
        span = tracer.span("instant")
        span.end()
        assert span.duration_ns >= 0


class TestTracerRing:
    def test_capacity_bounds_buffer_but_total_counts(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.span(f"s{i}").end()
        assert len(tracer) == 3
        assert tracer.total == 10
        assert tracer.truncated
        assert [s.name for s in tracer.spans()] == ["s7", "s8", "s9"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()
        ids = []

        def work():
            for _ in range(50):
                span = tracer.span("t")
                ids.append(span.span_id)
                span.end()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 200


class TestGlobalTracer:
    def test_default_is_null(self):
        assert not get_tracer().enabled

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        try:
            assert get_tracer() is tracer
            assert tracer.enabled
        finally:
            disable_tracing()
        assert isinstance(get_tracer(), NullTracer)

    def test_scoped_context_manager_restores(self):
        before = get_tracer()
        with tracing_enabled() as tracer:
            assert get_tracer() is tracer
            with tracer.span("work"):
                pass
        assert get_tracer() is before
        assert len(tracer) == 1

    def test_null_tracer_hands_out_shared_span(self):
        null = NullTracer()
        a = null.span("a", key=1)
        b = null.span("b")
        assert a is b  # one shared no-op object: zero allocation per span
        with a as entered:
            assert entered is a
        assert a.set_attribute("x", 1) is a


class TestExporters:
    def _tracer_with_spans(self):
        tracer = Tracer()
        with tracer.span("build", method="feline"):
            with tracer.span("query", verdict=False):
                pass
        return tracer

    def test_jsonl_lines_parse(self, tmp_path):
        tracer = self._tracer_with_spans()
        lines = spans_to_jsonl(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["query", "build"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[0]["attributes"] == {"verdict": False}
        path = write_spans_jsonl(tracer, tmp_path / "spans.jsonl")
        assert path.read_text().splitlines() == lines

    def test_empty_tracer_exports_empty_jsonl(self):
        assert spans_to_jsonl(Tracer()) == ""

    def test_chrome_trace_structure(self, tmp_path):
        tracer = self._tracer_with_spans()
        doc = json.loads(spans_to_chrome_trace(tracer))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "repro"
        assert len(slices) == 2
        for event in slices:
            # The complete-event subset every viewer requires.
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] >= 0
        by_name = {e["name"]: e for e in slices}
        assert (
            by_name["query"]["args"]["parent_id"]
            == by_name["build"]["args"]["span_id"]
        )
        assert by_name["build"]["args"]["method"] == "feline"
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        assert json.loads(path.read_text()) == doc

    def test_chrome_trace_stringifies_exotic_attributes(self):
        tracer = Tracer()
        tracer.span("s", coords=(1, 2)).end()
        doc = json.loads(spans_to_chrome_trace(tracer))
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["args"]["coords"] == "(1, 2)"
