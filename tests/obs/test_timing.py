"""Unit tests for Timer / timed and the trace log."""

import pytest

from repro.obs.metrics import Histogram
from repro.obs.timing import Timer, timed
from repro.obs.trace import TraceLog


class TestTimer:
    def test_start_stop(self):
        t = Timer().start()
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed
        assert not t.running

    def test_stop_before_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_live_elapsed_while_running(self):
        t = Timer().start()
        assert t.elapsed >= 0.0
        assert t.running

    def test_context_manager(self):
        with Timer() as t:
            assert t.running
        assert not t.running and t.elapsed >= 0.0

    def test_restart_overwrites(self):
        t = Timer().start()
        t.stop()
        t.start()
        assert t.running


class TestTimed:
    def test_observes_elapsed(self):
        h = Histogram((1.0,))
        with timed(h.observe):
            pass
        assert h.count == 1

    def test_observes_on_exception(self):
        seen = []
        with pytest.raises(ValueError):
            with timed(seen.append):
                raise ValueError("x")
        assert len(seen) == 1 and seen[0] >= 0.0


class TestTraceLog:
    def test_ordered_sequence_numbers(self):
        log = TraceLog()
        log.record("a")
        log.record("b", duration_s=0.5, phase="p")
        events = list(log)
        assert [e.seq for e in events] == [0, 1]
        assert events[1].as_dict() == {
            "seq": 1, "name": "b", "duration_s": 0.5, "phase": "p",
        }

    def test_capacity_drops_oldest(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.record(f"e{i}")
        assert len(log) == 3
        assert log.total == 5
        assert log.truncated
        assert [e.name for e in log] == ["e2", "e3", "e4"]

    def test_clear(self):
        log = TraceLog()
        log.record("a")
        log.clear()
        assert len(log) == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)
