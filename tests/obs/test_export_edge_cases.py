"""Exporter edge cases and the zero-overhead-when-disabled guarantees."""

import json

from repro.baselines.base import create_index
from repro.graph.digraph import DiGraph
from repro.obs.export import to_jsonl, to_prometheus
from repro.obs.metrics import (
    _NULL_INSTRUMENT,
    MetricsRegistry,
    NullRegistry,
    get_registry,
)
from repro.obs.spans import NullTracer, get_tracer


class TestEmptyHistogram:
    def test_percentiles_are_zero(self):
        hist = MetricsRegistry().histogram("repro_empty_seconds")
        assert hist.count == 0
        assert hist.p50 == hist.p95 == hist.p99 == 0.0

    def test_jsonl_reports_null_min_max(self):
        reg = MetricsRegistry()
        reg.histogram("repro_empty_seconds")
        (record,) = [json.loads(line) for line in to_jsonl(reg).splitlines()]
        assert record["count"] == 0
        assert record["min"] is None and record["max"] is None
        assert record["buckets"] == []  # empty buckets elided

    def test_prometheus_emits_zero_series(self):
        reg = MetricsRegistry()
        reg.histogram("repro_empty_seconds", method="feline")
        text = to_prometheus(reg)
        assert 'repro_empty_seconds_bucket{method="feline",le="+Inf"} 0' in text
        assert 'repro_empty_seconds_count{method="feline"} 0' in text


class TestPrometheusLabelEscaping:
    def test_special_characters_round_trip(self):
        reg = MetricsRegistry()
        raw = 'a"b\\c\nd'
        reg.counter("repro_escapes_total", dataset=raw).inc()
        line = next(
            ln for ln in to_prometheus(reg).splitlines()
            if ln.startswith("repro_escapes_total{")
        )
        # One physical line: the newline inside the value is escaped.
        escaped = line.split('dataset="', 1)[1].rsplit('"', 1)[0]
        assert escaped == 'a\\"b\\\\c\\nd'
        # Unescape per the exposition-format rules: the original returns.
        unescaped = (
            escaped.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        assert unescaped == raw

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("repro.dotted-name").inc()
        assert "repro_dotted_name 1" in to_prometheus(reg)


class TestZeroOverheadGuards:
    """The disabled defaults hand out shared singletons — no allocation."""

    def _index(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        return create_index("feline", graph).build()

    def test_null_registry_instruments_are_one_object(self):
        null = NullRegistry()
        assert null.counter("a") is _NULL_INSTRUMENT
        assert null.gauge("b") is _NULL_INSTRUMENT
        assert null.histogram("c") is _NULL_INSTRUMENT
        assert null.counter("a", method="x") is null.histogram("c")

    def test_defaults_are_disabled(self):
        assert not get_registry().enabled
        assert not get_tracer().enabled

    def test_index_hot_path_handles_stay_none(self):
        index = self._index()
        assert index._hot_obs is None
        assert index._latency_hist is None
        assert index._query_tracer is None
        # The pruned DFS is NOT wrapped by the timing observer.
        assert index._search.__func__ is type(index)._search

    def test_null_tracer_span_is_shared_singleton(self):
        null = NullTracer()
        assert null.span("a") is null.span("b", attr=1)
