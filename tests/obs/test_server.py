"""Unit tests for the stdlib scrape endpoint (ObsServer)."""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer
from repro.obs.slowlog import SlowQueryLog


def _get(url: str) -> tuple[int, str]:
    with urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", method="feline").inc(3)
    log = SlowQueryLog(threshold_ns=0)
    log.record(1, 2, True, 5000, "feline")
    srv = ObsServer(registry=registry, slow_log=log)
    with srv:
        yield srv


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_metrics_prometheus_text(self, server):
        status, body = _get(server.url + "/metrics")
        assert status == 200
        assert 'repro_queries_total{method="feline"} 3' in body

    def test_slow_json(self, server):
        status, body = _get(server.url + "/slow")
        assert status == 200
        payload = json.loads(body)
        assert payload["observed"] == 1
        assert payload["records"][0]["u"] == 1
        assert payload["records"][0]["elapsed_us"] == 5.0

    def test_unknown_path_404(self, server):
        with pytest.raises(HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_query_string_ignored(self, server):
        status, _ = _get(server.url + "/healthz?probe=1")
        assert status == 200


class TestLifecycle:
    def test_port_zero_picks_free_port(self, server):
        assert server.port > 0
        assert str(server.port) in server.url

    def test_stop_is_idempotent(self):
        srv = ObsServer(registry=MetricsRegistry()).start()
        srv.stop()
        srv.stop()

    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_restart_after_stop(self):
        """start() after stop() rebinds a fresh socket and serves again."""
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", method="feline").inc(7)
        srv = ObsServer(registry=registry).start()
        first_port = srv.port
        srv.stop()
        assert not srv.running
        srv.start()
        try:
            assert srv.running
            # With port=0 the rebind may land anywhere; the property
            # reflects the fresh socket.
            assert srv.port > 0
            status, body = _get(srv.url + "/metrics")
            assert status == 200
            assert 'repro_queries_total{method="feline"} 7' in body
        finally:
            srv.stop()
        assert first_port > 0

    def test_running_property(self):
        srv = ObsServer(registry=MetricsRegistry())
        assert not srv.running
        srv.start()
        assert srv.running
        srv.stop()
        assert not srv.running

    def test_no_slow_log_serves_empty_document(self):
        with ObsServer(registry=MetricsRegistry()) as srv:
            _, body = _get(srv.url + "/slow")
        assert json.loads(body) == {"records": [], "observed": 0}
