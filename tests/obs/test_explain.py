"""Unit tests for explain(): cut classification, details, budget reports."""

import json

import pytest

from repro import Reachability
from repro.baselines.base import create_index
from repro.graph.digraph import DiGraph
from repro.obs.explain import CUTS, QueryExplanation
from repro.resilience import UNKNOWN, QueryBudget


def diamond() -> DiGraph:
    #     1
    #   /   \
    #  0     3 -> 4
    #   \   /
    #     2
    return DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])


def chain(n: int) -> DiGraph:
    return DiGraph.from_edges([(i, i + 1) for i in range(n - 1)])


def build(method: str, graph: DiGraph, **params):
    return create_index(method, graph, **params).build()


class TestFelineCuts:
    def test_equal(self):
        index = build("feline", diamond())
        exp = index.explain(2, 2)
        assert exp.verdict is True
        assert exp.cut == "equal"

    def test_positive_cut_carries_intervals(self):
        index = build("feline", diamond())
        exp = index.explain(0, 4)
        assert exp.verdict is True
        assert exp.cut in ("positive-cut", "search")
        assert "i(u)" in exp.details and "i(v)" in exp.details
        if exp.cut == "positive-cut":
            assert "interval(u)" in exp.details

    def test_negative_cut_reports_non_dominance(self):
        index = build("feline", diamond())
        exp = index.explain(4, 0)
        assert exp.verdict is False
        assert exp.cut in ("negative-cut", "level-filter")
        if exp.cut == "negative-cut":
            assert exp.details["dominates"] is False

    def test_search_counts_expansions(self):
        # No positive cut and wide fan-out: force the online search.
        index = build(
            "feline", diamond(), use_positive_cut=False, use_level_filter=False
        )
        exp = index.explain(0, 4)
        assert exp.verdict is True
        assert exp.cut == "search"
        assert exp.expanded >= 1

    def test_verdict_matches_query_everywhere(self):
        graph = diamond()
        index = build("feline", graph)
        twin = build("feline", graph)
        for u in range(graph.num_vertices):
            for v in range(graph.num_vertices):
                assert index.explain(u, v).verdict == twin.query(u, v)

    def test_stats_advance_like_query(self):
        index = build("feline", diamond())
        index.explain(0, 4)
        index.explain(4, 0)
        index.explain(1, 1)
        assert index.stats.queries == 3


class TestOtherMethods:
    @pytest.mark.parametrize(
        "method", ["feline-b", "feline-k", "grail", "bfs", "tc", "scarab"]
    )
    def test_cut_is_known_and_verdict_exact(self, method):
        graph = diamond()
        index = build(method, graph)
        truth = build("dfs", graph)
        for u in range(graph.num_vertices):
            for v in range(graph.num_vertices):
                exp = index.explain(u, v)
                assert exp.cut in CUTS
                assert exp.verdict == truth.query(u, v)

    def test_feline_b_reversed_cut_detail(self):
        index = build("feline-b", diamond())
        exp = index.explain(4, 0)
        assert exp.verdict is False
        assert exp.cut in (
            "negative-cut", "negative-cut-reversed", "level-filter"
        )
        assert "i'(u)" in exp.details

    def test_scarab_reports_gateways(self):
        exp = build("scarab", diamond()).explain(0, 4)
        assert exp.details["base_method"] == "feline"
        assert exp.details["out_gateways"] >= 0


class TestBudgetReport:
    def test_unbudgeted_has_no_report(self):
        assert build("feline", diamond()).explain(0, 4).budget is None

    def test_completed_within_budget(self):
        index = build("feline", diamond())
        exp = index.explain(0, 4, budget=QueryBudget(max_steps=10_000))
        assert exp.budget.outcome == "completed"
        assert not exp.budget.exhausted
        assert exp.verdict is True

    def test_exhausted_unknown(self):
        index = build(
            "feline", chain(400), use_positive_cut=False,
            use_level_filter=False,
        )
        budget = QueryBudget(max_steps=5, policy="unknown")
        exp = index.explain(0, 399, budget=budget)
        assert exp.verdict is UNKNOWN
        assert exp.budget.exhausted
        assert exp.budget.outcome == "unknown"
        assert exp.budget.steps_used >= 5

    def test_raise_policy_never_raises_from_explain(self):
        index = build(
            "feline", chain(400), use_positive_cut=False,
            use_level_filter=False,
        )
        budget = QueryBudget(max_steps=5, policy="raise")
        exp = index.explain(0, 399, budget=budget)
        assert exp.verdict is UNKNOWN
        assert exp.budget.outcome == "raised"

    def test_fallback_policy_resolves(self):
        index = build(
            "feline", chain(50), use_positive_cut=False,
            use_level_filter=False,
        )
        budget = QueryBudget(max_steps=5, policy="fallback")
        exp = index.explain(0, 49, budget=budget)
        assert exp.budget.exhausted
        assert exp.budget.outcome.startswith("fallback")
        if exp.verdict is not UNKNOWN:
            assert exp.verdict is True


class TestRenderAndSerialize:
    def test_render_mentions_cut_and_verdict(self):
        text = build("feline", diamond()).explain(4, 0).render()
        assert "not reachable" in text
        assert "O(1)" in text

    def test_as_dict_is_json_ready(self):
        index = build(
            "feline", chain(50), use_positive_cut=False,
            use_level_filter=False,
        )
        exp = index.explain(
            0, 49, budget=QueryBudget(max_steps=5, policy="unknown")
        )
        payload = json.loads(json.dumps(exp.as_dict()))
        assert payload["verdict"] == "UNKNOWN"
        assert payload["budget"]["policy"] == "unknown"

    def test_unknown_renders_in_text(self):
        index = build(
            "feline", chain(50), use_positive_cut=False,
            use_level_filter=False,
        )
        exp = index.explain(
            0, 49, budget=QueryBudget(max_steps=5, policy="unknown")
        )
        assert "UNKNOWN" in exp.render()
        assert "budget" in exp.render()


class TestFacadeExplain:
    def test_same_scc_cut(self):
        # 0 <-> 1 form one SCC; 2 hangs off it.
        oracle = Reachability([(0, 1), (1, 0), (1, 2)])
        exp = oracle.explain(0, 1)
        assert exp.verdict is True
        assert exp.cut == "same-scc"
        assert exp.details["scc(u)"] == exp.details["scc(v)"]

    def test_original_ids_survive_mapping(self):
        oracle = Reachability([(0, 1), (1, 0), (1, 2)])
        exp = oracle.explain(2, 0)
        assert (exp.u, exp.v) == (2, 0)
        assert exp.verdict is False

    def test_matches_reachable(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (4, 3)]
        oracle = Reachability(edges)
        for u in range(5):
            for v in range(5):
                assert oracle.explain(u, v).verdict == oracle.reachable(u, v)

    def test_returns_query_explanation(self):
        oracle = Reachability([(0, 1)])
        assert isinstance(oracle.explain(0, 1), QueryExplanation)
