"""Unit tests for the JSON-lines and Prometheus exporters."""

import json

from repro.obs.export import (
    to_jsonl,
    to_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_queries_total", help="Total queries.", method="feline").inc(7)
    reg.gauge("repro_index_bytes", method="feline").set(1024)
    hist = reg.histogram(
        "repro_query_batch_size", buckets=COUNT_BUCKETS, method="feline"
    )
    hist.observe(3)
    hist.observe(100)
    reg.trace("index.build", duration_s=0.25, method="feline", vertices=10)
    return reg


class TestJsonl:
    def test_every_line_parses(self):
        lines = to_jsonl(_populated_registry()).splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {
            "counter", "gauge", "histogram", "trace",
        }

    def test_counter_line(self):
        records = [
            json.loads(line)
            for line in to_jsonl(_populated_registry()).splitlines()
        ]
        counter = next(r for r in records if r["type"] == "counter")
        assert counter["name"] == "repro_queries_total"
        assert counter["value"] == 7
        assert counter["labels"] == {"method": "feline"}

    def test_histogram_line_carries_percentiles(self):
        records = [
            json.loads(line)
            for line in to_jsonl(_populated_registry()).splitlines()
        ]
        hist = next(r for r in records if r["type"] == "histogram")
        assert hist["count"] == 2
        assert hist["p50"] <= hist["p95"] <= hist["p99"]
        assert all(b["count"] for b in hist["buckets"])  # empty buckets elided

    def test_trace_line(self):
        records = [
            json.loads(line)
            for line in to_jsonl(_populated_registry()).splitlines()
        ]
        trace = next(r for r in records if r["type"] == "trace")
        assert trace["name"] == "index.build"
        assert trace["duration_s"] == 0.25
        assert trace["vertices"] == 10

    def test_empty_registry_empty_output(self):
        assert to_jsonl(MetricsRegistry()) == ""

    def test_write_jsonl(self, tmp_path):
        path = write_jsonl(_populated_registry(), tmp_path / "m.jsonl")
        assert path.exists()
        for line in path.read_text().splitlines():
            json.loads(line)


class TestPrometheus:
    def test_help_and_type_headers(self):
        text = to_prometheus(_populated_registry())
        assert "# HELP repro_queries_total Total queries." in text
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_index_bytes gauge" in text
        assert "# TYPE repro_query_batch_size histogram" in text

    def test_sample_lines(self):
        text = to_prometheus(_populated_registry())
        assert 'repro_queries_total{method="feline"} 7' in text
        assert 'repro_index_bytes{method="feline"} 1024' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(_populated_registry())
        assert 'le="+Inf"} 2' in text
        assert 'repro_query_batch_size_count{method="feline"} 2' in text
        assert 'repro_query_batch_size_sum{method="feline"} 103' in text
        # cumulative counts never decrease along the bucket series
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_query_batch_size_bucket")
        ]
        assert counts == sorted(counts)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = to_prometheus(reg)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_metric_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird.name-with chars").inc()
        text = to_prometheus(reg)
        assert "weird_name_with_chars 1" in text

    def test_write_prometheus(self, tmp_path):
        path = write_prometheus(_populated_registry(), tmp_path / "m.prom")
        assert path.exists() and "# TYPE" in path.read_text()
