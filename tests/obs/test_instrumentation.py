"""End-to-end tests: the built-in instrumentation of indexes and facade."""

import repro
from repro.baselines.base import create_index
from repro.core.query import FelineIndex
from repro.obs.metrics import MetricsRegistry, metrics_enabled
from repro.graph.generators import crown_graph, random_dag


class TestBuildInstrumentation:
    def test_build_counter_timer_and_trace(self):
        g = random_dag(60, avg_degree=2.0, seed=1)
        with metrics_enabled() as reg:
            FelineIndex(g).build()
        assert reg.counter("repro_index_builds_total", method="feline").value == 1
        build_hist = reg.histogram("repro_index_build_seconds", method="feline")
        assert build_hist.count == 1
        builds = [e for e in reg.trace_log if e.name == "index.build"]
        assert builds and builds[0].fields["vertices"] == 60

    def test_feline_build_phases_traced(self):
        g = random_dag(40, avg_degree=2.0, seed=2)
        with metrics_enabled() as reg:
            FelineIndex(g).build()
        phases = {
            e.fields["phase"]
            for e in reg.trace_log
            if e.name == "feline.build"
        }
        assert phases == {
            "x-order", "y-heuristic", "level-filter", "positive-cut-forest",
        }

    def test_disabled_registry_leaves_index_clean(self):
        g = random_dag(30, avg_degree=2.0, seed=3)
        index = FelineIndex(g).build()
        assert index._latency_hist is None
        # the bound _search is the plain method, not an observer wrapper
        assert index._search.__func__ is FelineIndex._search


class TestQueryInstrumentation:
    def test_scalar_latency_histogram_counts_queries(self):
        g = random_dag(50, avg_degree=2.0, seed=4)
        with metrics_enabled() as reg:
            index = FelineIndex(g).build()
            for u in range(10):
                index.query(u, (u + 7) % 50)
        hist = reg.histogram("repro_query_latency_seconds", method="feline")
        assert hist.count == 10
        assert hist.p50 <= hist.p99

    def test_batch_histograms(self):
        g = random_dag(50, avg_degree=2.0, seed=5)
        pairs = [(u, (u + 3) % 50) for u in range(20)]
        with metrics_enabled() as reg:
            index = FelineIndex(g).build()
            index.query_many(pairs)
        assert reg.histogram("repro_query_batch_seconds", method="feline").count == 1
        size_hist = reg.histogram("repro_query_batch_size", method="feline")
        assert size_hist.count == 1 and size_hist.sum == 20

    def test_search_observer_counts_expansions(self):
        # crown graphs defeat the cuts, forcing real searches
        g = crown_graph(6)
        with metrics_enabled() as reg:
            index = FelineIndex(g).build()
            for u in range(g.num_vertices):
                for v in range(g.num_vertices):
                    index.query(u, v)
        hist = reg.histogram("repro_search_expanded_vertices", method="feline")
        assert hist.count == index.stats.searches > 0
        assert hist.sum == index.stats.expanded

    def test_search_observer_applies_to_grail(self):
        g = crown_graph(5)
        with metrics_enabled() as reg:
            index = create_index("grail", g, num_labelings=2).build()
            index.query_many(
                [(u, v) for u in range(g.num_vertices) for v in range(g.num_vertices)]
            )
        hist = reg.histogram("repro_search_expanded_vertices", method="grail")
        assert hist.count == index.stats.searches

    def test_vectorized_batch_feeds_search_observer(self):
        g = crown_graph(6)
        with metrics_enabled() as reg:
            index = FelineIndex(g).build()
            pairs = [
                (u, v)
                for u in range(g.num_vertices)
                for v in range(g.num_vertices)
            ]
            index.query_many(pairs)  # vectorized path, scalar search fallback
        hist = reg.histogram("repro_search_expanded_vertices", method="feline")
        assert hist.count == index.stats.searches > 0


class TestPublishStats:
    def test_gauges_mirror_query_stats(self):
        g = random_dag(40, avg_degree=2.0, seed=6)
        with metrics_enabled() as reg:
            index = FelineIndex(g).build()
            index.query_many([(u, (u + 1) % 40) for u in range(40)])
            index.publish_stats(reg)
        for counter, value in index.stats.as_dict().items():
            gauge = reg.gauge("repro_query_stats", method="feline", counter=counter)
            assert gauge.value == value

    def test_noop_when_disabled(self):
        g = random_dag(20, avg_degree=1.5, seed=7)
        index = FelineIndex(g).build()
        index.query(0, 1)
        index.publish_stats()  # default registry is the null one

    def test_explicit_registry(self):
        g = random_dag(20, avg_degree=1.5, seed=8)
        index = FelineIndex(g).build()
        index.query(0, 1)
        reg = MetricsRegistry()
        index.publish_stats(reg)
        assert (
            reg.gauge("repro_query_stats", method="feline", counter="queries").value
            == 1
        )


class TestFacadeInstrumentation:
    def test_condense_phase_traced(self):
        with metrics_enabled() as reg:
            repro.Reachability([(0, 1), (1, 0), (1, 2)])
        phases = [e for e in reg.trace_log if e.name == "facade.init"]
        assert phases and phases[0].fields["phase"] == "condense"

    def test_facade_queries_feed_method_histogram(self):
        g = random_dag(30, avg_degree=2.0, seed=9)
        with metrics_enabled() as reg:
            oracle = repro.Reachability(g)
            oracle.reachable(0, 1)
            oracle.reachable_many([(0, 1), (1, 2)])
        assert (
            reg.histogram("repro_query_latency_seconds", method="feline").count == 1
        )
        assert (
            reg.histogram("repro_query_batch_seconds", method="feline").count == 1
        )


class TestHarnessIntegration:
    def test_measure_method_publishes_when_enabled(self):
        from repro.bench.harness import MethodSpec, measure_method

        g = random_dag(40, avg_degree=2.0, seed=10)
        pairs = [(u, (u + 3) % 40) for u in range(30)]
        with metrics_enabled() as reg:
            result = measure_method(g, MethodSpec("feline"), pairs, runs=1)
        # percentile pass forced on by the live registry
        assert result.query_p50_us is not None
        assert result.query_p50_us <= result.query_p95_us <= result.query_p99_us
        # per-query latencies landed in the registry histogram too
        assert (
            reg.histogram("repro_query_latency_seconds", method="feline").count
            == len(pairs)
        )
        # QueryStats published as gauges
        assert (
            reg.gauge("repro_query_stats", method="feline", counter="queries").value
            > 0
        )
