"""Unit tests for distributed tracing + cross-process telemetry glue.

Everything here is single-process: trace-id propagation through the
ambient parent, remote-span adoption (remapping, re-parenting, orphan
and garbage handling), the delta-merging telemetry fold, the per-stage
latency histogram, and the trace views behind ``/trace`` and the
``repro trace`` CLI.  Multi-process stitching over real shard workers
lives in ``tests/shard/test_trace_stitch.py``.
"""

import json

import pytest

from repro.graph.digraph import DiGraph
from repro.obs.distributed import (
    TelemetryMerger,
    build_aux,
    ingest_aux,
    recent_traces,
    render_trace_tree,
    trace_payload,
    trace_to_chrome,
    trace_tree,
)
from repro.obs.metrics import (
    MetricsRegistry,
    metrics_enabled,
    reset_instruments,
    snapshot_instruments,
)
from repro.obs.spans import (
    NullTracer,
    Tracer,
    format_trace_id,
    new_trace_id,
    parse_trace_id,
    tracing_enabled,
)

EDGES = [(0, 1), (1, 2), (2, 3)]


# ---------------------------------------------------------------------------
# Trace ids
# ---------------------------------------------------------------------------
class TestTraceIds:
    def test_new_trace_id_is_nonzero_64_bit(self):
        for _ in range(64):
            tid = new_trace_id()
            assert 1 <= tid < 2**64

    def test_format_parse_roundtrip(self):
        tid = 0xDEADBEEF12345678
        text = format_trace_id(tid)
        assert len(text) == 16
        assert parse_trace_id(text) == tid

    def test_parse_accepts_0x_decimal_and_int(self):
        assert parse_trace_id("0xff") == 255
        assert parse_trace_id("123") == 123
        assert parse_trace_id(42) == 42

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_trace_id("not-a-trace")


# ---------------------------------------------------------------------------
# Propagation through the ambient parent
# ---------------------------------------------------------------------------
class TestTracePropagation:
    def test_children_inherit_the_roots_trace(self):
        tracer = Tracer()
        tid = new_trace_id()
        with tracer.span("serve.request", trace_id=tid):
            with tracer.span("serve.flush"):
                with tracer.span("engine.cut"):
                    pass
        assert [s.trace_id for s in tracer.spans()] == [tid, tid, tid]

    def test_explicit_trace_id_overrides_inheritance(self):
        tracer = Tracer()
        with tracer.span("serve.request", trace_id=7):
            with tracer.span("shard.rpc", trace_id=9):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["shard.rpc"].trace_id == 9
        assert by_name["serve.request"].trace_id == 7

    def test_untraced_spans_have_no_trace_id(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        assert tracer.spans()[0].trace_id is None

    def test_spans_for_trace_filters(self):
        tracer = Tracer()
        with tracer.span("a", trace_id=1):
            pass
        with tracer.span("b", trace_id=2):
            pass
        assert [s.name for s in tracer.spans_for_trace(2)] == ["b"]

    def test_null_tracer_span_accepts_trace_id(self):
        tracer = NullTracer()
        with tracer.span("query", trace_id=123, u=0) as span:
            span.set_attribute("verdict", True)
        assert len(tracer) == 0


# ---------------------------------------------------------------------------
# Adoption (the coordinator side of the piggyback)
# ---------------------------------------------------------------------------
def remote_span_dicts():
    """Two spans from a 'worker': local_many with one child search."""
    worker = Tracer()
    with worker.span("worker.local_many", shard=1):
        with worker.span("engine.search"):
            pass
    return [s.as_dict() for s in worker.spans()]


class TestAdoption:
    def test_adopt_remaps_ids_and_reparents_roots(self):
        tracer = Tracer()
        with tracer.span("shard.rpc", trace_id=5) as rpc:
            pass
        adopted = tracer.adopt(
            remote_span_dicts(), trace_id=5, parent_id=rpc.span_id
        )
        assert len(adopted) == 2
        by_name = {s.name: s for s in adopted}
        root = by_name["worker.local_many"]
        child = by_name["engine.search"]
        # The remote root hangs off the coordinator's shard.rpc span,
        # the internal parent edge is preserved in the new id space.
        assert root.parent_id == rpc.span_id
        assert child.parent_id == root.span_id
        assert {s.trace_id for s in adopted} == {5}
        local_ids = {s.span_id for s in tracer.spans()}
        assert len(local_ids) == len(tracer.spans())  # no id collisions

    def test_adopt_skips_malformed_entries(self):
        tracer = Tracer()
        docs = [
            "garbage",
            {"name": 42, "start_ns": 0, "duration_ns": 1},
            {"name": "ok", "start_ns": 10, "duration_ns": -5},
            {"name": "good", "start_ns": 10, "duration_ns": 5, "pid": 999},
        ]
        adopted = tracer.adopt(docs, trace_id=1, parent_id=None)
        assert [s.name for s in adopted] == ["good"]
        assert adopted[0].pid == 999

    def test_adopt_does_not_touch_stage_histograms(self):
        # Workers already observed their stage times before shipping;
        # adoption must append raw, never re-observe.
        docs = remote_span_dicts()
        with metrics_enabled() as registry:
            tracer = Tracer()
            tracer.adopt(docs, trace_id=1)
            hist = registry.histogram("repro_stage_seconds", stage="worker")
            assert hist.count == 0

    def test_null_tracer_adopt_is_a_noop(self):
        assert NullTracer().adopt(remote_span_dicts(), trace_id=1) == []


# ---------------------------------------------------------------------------
# The per-stage latency decomposition
# ---------------------------------------------------------------------------
class TestStageHistogram:
    def test_stage_spans_observe_repro_stage_seconds(self):
        with metrics_enabled() as registry:
            with tracing_enabled() as tracer:
                for name, stage in [
                    ("serve.queue", "queue"),
                    ("serve.flush", "coalesce"),
                    ("engine.observer", "observer"),
                    ("engine.cut", "cut"),
                    ("engine.search", "search"),
                    ("shard.rpc", "rpc"),
                    ("worker.local_many", "worker"),
                ]:
                    with tracer.span(name):
                        pass
                    hist = registry.histogram(
                        "repro_stage_seconds", stage=stage
                    )
                    assert hist.count == 1, name

    def test_unmapped_span_names_observe_nothing(self):
        with metrics_enabled() as registry:
            with tracing_enabled() as tracer:
                with tracer.span("query"):
                    pass
            assert all(
                name != "repro_stage_seconds"
                for (_, name, _) in registry._instruments
            )


# ---------------------------------------------------------------------------
# Telemetry snapshots and the delta merge
# ---------------------------------------------------------------------------
class TestTelemetryMerger:
    def test_counter_deltas_never_double_count(self):
        worker = MetricsRegistry()
        worker.counter("jobs_total", kind="x").inc(5)
        parent = MetricsRegistry()
        merger = TelemetryMerger()
        snap = snapshot_instruments(worker)
        merger.apply("w0", snap, parent, shard="0")
        merger.apply("w0", snap, parent, shard="0")  # re-shipped totals
        assert parent.counter("jobs_total", kind="x", shard="0").value == 5
        worker.counter("jobs_total", kind="x").inc(2)
        merger.apply("w0", snapshot_instruments(worker), parent, shard="0")
        assert parent.counter("jobs_total", kind="x", shard="0").value == 7

    def test_restart_detected_by_negative_delta(self):
        worker = MetricsRegistry()
        worker.counter("jobs_total").inc(10)
        parent = MetricsRegistry()
        merger = TelemetryMerger()
        merger.apply("w0", snapshot_instruments(worker), parent)
        fresh = MetricsRegistry()  # the restarted worker, zeroed
        fresh.counter("jobs_total").inc(3)
        merger.apply("w0", snapshot_instruments(fresh), parent)
        assert parent.counter("jobs_total").value == 13

    def test_reset_drops_the_baseline(self):
        worker = MetricsRegistry()
        worker.counter("jobs_total").inc(4)
        parent = MetricsRegistry()
        merger = TelemetryMerger()
        snap = snapshot_instruments(worker)
        merger.apply("w0", snap, parent)
        merger.reset("w0")
        merger.apply("w0", snap, parent)  # fresh source: applied whole
        assert parent.counter("jobs_total").value == 8

    def test_gauges_are_absolute(self):
        worker = MetricsRegistry()
        worker.gauge("depth").set(7.0)
        parent = MetricsRegistry()
        merger = TelemetryMerger()
        snapshot = snapshot_instruments(worker)
        merger.apply("w0", snapshot, parent, shard="2")
        merger.apply("w0", snapshot, parent, shard="2")
        assert parent.gauge("depth", shard="2").value == 7.0

    def test_histogram_deltas_and_min_max_fold(self):
        worker = MetricsRegistry()
        worker.histogram("lat_seconds").observe(0.5)
        parent = MetricsRegistry()
        merger = TelemetryMerger()
        merger.apply("w0", snapshot_instruments(worker), parent)
        worker.histogram("lat_seconds").observe(2.0)
        merger.apply("w0", snapshot_instruments(worker), parent)
        merged = parent.histogram("lat_seconds")
        assert merged.count == 2
        assert merged.sum == pytest.approx(2.5)
        assert merged.min == pytest.approx(0.5)
        assert merged.max == pytest.approx(2.0)

    def test_malformed_docs_are_isolated(self):
        parent = MetricsRegistry()
        merger = TelemetryMerger()
        snapshot = [
            {"kind": "counter"},  # missing fields
            "garbage",
            {"kind": "counter", "name": "ok_total", "labels": {}, "value": 2},
        ]
        assert merger.apply("w0", snapshot, parent) == 1
        assert parent.counter("ok_total").value == 2


class TestSnapshotReset:
    def test_snapshot_skips_zero_counters_and_ships_gauges(self):
        registry = MetricsRegistry()
        registry.counter("zero_total")
        registry.counter("hot_total").inc()
        registry.gauge("idle").set(0.0)
        names = {doc["name"] for doc in snapshot_instruments(registry)}
        assert names == {"hot_total", "idle"}

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc(9)
        hist = registry.histogram("lat_seconds")
        hist.observe(1.0)
        reset_instruments(registry)
        # Same objects, zeroed: handles resolved pre-fork stay valid.
        assert counter.value == 0
        assert hist.count == 0 and hist.sum == 0.0
        assert registry.counter("jobs_total") is counter


# ---------------------------------------------------------------------------
# The piggyback envelope
# ---------------------------------------------------------------------------
class TestBuildIngestAux:
    def test_orphan_spans_are_drained_but_not_shipped(self):
        tracer = Tracer()
        with tracer.span("worker.local"):
            pass
        aux = build_aux(
            tracer=tracer,
            registry=MetricsRegistry(),
            trace_ctx=None,
            pid=123,
            ship_telemetry=False,
        )
        assert aux is None
        assert len(tracer) == 0  # the ring was cleared either way

    def test_spans_ship_under_the_trace_ctx(self):
        tracer = Tracer()
        with tracer.span("worker.local", shard=0):
            pass
        aux = build_aux(
            tracer=tracer,
            registry=MetricsRegistry(),
            trace_ctx=(77, 4),
            pid=123,
            ship_telemetry=False,
        )
        assert aux["trace_id"] == 77 and aux["parent_id"] == 4
        assert [doc["name"] for doc in aux["spans"]] == ["worker.local"]
        assert aux["pid"] == 123
        assert len(tracer) == 0

    def test_telemetry_ships_when_asked(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(3)
        aux = build_aux(
            tracer=NullTracer(),
            registry=registry,
            trace_ctx=None,
            pid=9,
            ship_telemetry=True,
        )
        assert {doc["name"] for doc in aux["telemetry"]} == {"jobs_total"}

    def test_ingest_adopts_and_merges(self):
        coordinator = Tracer()
        with coordinator.span("shard.rpc", trace_id=11) as rpc:
            pass
        worker_reg = MetricsRegistry()
        worker_reg.counter("jobs_total").inc(2)
        worker = Tracer()
        with worker.span("worker.local"):
            pass
        aux = build_aux(
            tracer=worker,
            registry=worker_reg,
            trace_ctx=(11, rpc.span_id),
            pid=4242,
            ship_telemetry=True,
        )
        parent_reg = MetricsRegistry()
        merger = TelemetryMerger()
        ingest_aux(
            aux,
            merger=merger,
            source=0,
            tracer=coordinator,
            registry=parent_reg,
            shard="0",
        )
        stitched = coordinator.spans_for_trace(11)
        assert {s.name for s in stitched} == {"shard.rpc", "worker.local"}
        assert parent_reg.counter("jobs_total", shard="0").value == 2

    def test_ingest_never_raises_on_garbage(self):
        for garbage in [None, 42, "x", {"spans": "nope", "telemetry": 3}]:
            ingest_aux(garbage, merger=TelemetryMerger(), source=0)


# ---------------------------------------------------------------------------
# Trace views
# ---------------------------------------------------------------------------
def stitched_tracer():
    tracer = Tracer()
    tid = 0xABC
    with tracer.span("serve.request", trace_id=tid, endpoint="/reach"):
        with tracer.span("shard.rpc", shard=1, op="local") as rpc:
            pass
    worker = Tracer()
    with worker.span("worker.local", shard=1):
        pass
    docs = [s.as_dict() for s in worker.spans()]
    for doc in docs:
        doc["pid"] = 99999  # a foreign process
    tracer.adopt(docs, trace_id=tid, parent_id=rpc.span_id)
    return tracer, tid


class TestTraceViews:
    def test_trace_tree_nests_and_sorts(self):
        tracer, tid = stitched_tracer()
        roots = trace_tree(tracer, tid)
        assert len(roots) == 1
        assert roots[0]["name"] == "serve.request"
        rpc = roots[0]["children"][0]
        assert rpc["name"] == "shard.rpc"
        assert rpc["children"][0]["name"] == "worker.local"

    def test_trace_payload_reports_pids(self):
        tracer, tid = stitched_tracer()
        payload = trace_payload(tracer, tid)
        assert payload["trace_id"] == format_trace_id(tid)
        assert payload["span_count"] == 3
        assert 99999 in payload["pids"] and len(payload["pids"]) == 2

    def test_recent_traces_most_recent_first(self):
        tracer = Tracer()
        with tracer.span("first", trace_id=1):
            pass
        with tracer.span("second", trace_id=2):
            pass
        listing = recent_traces(tracer)
        assert [entry["trace_id"] for entry in listing] == [
            format_trace_id(2),
            format_trace_id(1),
        ]
        assert listing[0]["name"] == "second"

    def test_render_trace_tree_is_indented_text(self):
        tracer, tid = stitched_tracer()
        text = render_trace_tree(trace_payload(tracer, tid))
        lines = text.splitlines()
        assert format_trace_id(tid) in lines[0]
        assert lines[1].startswith("serve.request")
        assert lines[2].startswith("  shard.rpc")
        assert lines[3].startswith("    worker.local")

    def test_trace_to_chrome_has_one_track_per_pid(self):
        tracer, tid = stitched_tracer()
        doc = trace_to_chrome(trace_payload(tracer, tid))
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 2  # coordinator + the foreign worker pid
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        for event in slices:
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        json.dumps(doc)  # the document must be serializable as-is


# ---------------------------------------------------------------------------
# Zero overhead when disabled
# ---------------------------------------------------------------------------
class TestZeroOverheadDefaults:
    def test_batch_answers_and_stats_identical_with_tracing_toggle(self):
        from repro import Reachability

        pairs = [(u, v) for u in range(5) for v in range(5)]
        plain = Reachability(DiGraph(5, EDGES))
        baseline = plain.reachable_many(pairs)
        base_stats = plain.index.stats.as_dict()

        with tracing_enabled():
            traced = Reachability(DiGraph(5, EDGES))
            answers = traced.reachable_many(pairs)
            traced_stats = traced.index.stats.as_dict()
        assert answers == baseline
        assert traced_stats == base_stats
