"""Run the doc-comment examples as tests (the docs must not rot)."""

import doctest

import pytest

import repro
import repro.core.distributed
import repro.core.incremental
import repro.core.query
import repro.graph.builder
import repro.scarab.scar

MODULES_WITH_EXAMPLES = [
    repro,
    repro.graph.builder,
    repro.core.query,
    repro.core.incremental,
    repro.core.distributed,
    repro.scarab.scar,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} lost its examples"
