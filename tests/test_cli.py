"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import random_dag
from repro.graph.io import write_edge_list


class TestListing:
    def test_methods_listed(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "feline" in out and "grail" in out

    def test_datasets_listed(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "100M-10" in out


class TestQuery:
    @pytest.fixture
    def graph_file(self, tmp_path):
        g = random_dag(30, avg_degree=2.0, seed=1)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        return path, g

    def test_reachable_exit_zero(self, graph_file, capsys):
        path, g = graph_file
        u, v = next(iter(g.edges()))
        assert main(["query", str(path), str(u), str(v)]) == 0
        assert "reachable" in capsys.readouterr().out

    def test_unreachable_exit_one(self, graph_file, capsys):
        path, g = graph_file
        u, v = next(iter(g.edges()))
        assert main(["query", str(path), str(v), str(u)]) == 1
        assert "not reachable" in capsys.readouterr().out

    def test_method_flag(self, graph_file):
        path, g = graph_file
        u, v = next(iter(g.edges()))
        assert main(["query", str(path), str(u), str(v), "--method", "grail"]) == 0


class TestBench:
    def test_t2_runs(self, capsys):
        assert main(["bench", "t2", "--scale", "0.0002"]) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "100M-10" in out

    def test_t3_with_knobs(self, capsys):
        code = main([
            "bench", "t3", "--scale", "0.02", "--queries", "20",
            "--runs", "1", "--datasets", "arxiv,go",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FELINE" in out
        assert "yago" not in out

    def test_f12_dataset_restriction(self, capsys):
        code = main([
            "bench", "f12", "--scale", "0.02", "--datasets", "go",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "go (normal index)" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "t99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_metrics_out_writes_both_exports(self, tmp_path, capsys):
        import json

        from repro.obs.metrics import get_registry

        out = tmp_path / "metrics.jsonl"
        code = main([
            "bench", "t3", "--scale", "0.02", "--queries", "20",
            "--runs", "1", "--datasets", "arxiv",
            "--metrics-out", str(out),
        ])
        assert code == 0
        prom = tmp_path / "metrics.prom"
        assert out.exists() and prom.exists()
        records = [json.loads(line) for line in out.read_text().splitlines()]
        names = {r.get("name") for r in records}
        assert "repro_index_build_seconds" in names
        assert "repro_query_latency_seconds" in names
        latency = next(
            r for r in records if r.get("name") == "repro_query_latency_seconds"
        )
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        prom_text = prom.read_text()
        assert "# TYPE repro_query_latency_seconds histogram" in prom_text
        assert "repro_build_phase_seconds" in prom_text
        # the metrics run must not leave the global registry enabled
        assert not get_registry().enabled


class TestStatsCommand:
    @pytest.fixture
    def dag_file(self, tmp_path):
        g = random_dag(80, avg_degree=2.5, seed=11)
        path = tmp_path / "dag.edges"
        write_edge_list(g, path)
        return path

    def test_prints_breakdown_and_latency(self, dag_file, capsys):
        assert main(["stats", str(dag_file), "--queries", "200"]) == 0
        out = capsys.readouterr().out
        assert "queries: 200" in out
        assert "negative_cuts" in out and "searches" in out
        assert "query latency (us):" in out and "p99=" in out
        assert "build phases:" in out and "x-order" in out

    def test_method_flag(self, dag_file, capsys):
        assert main([
            "stats", str(dag_file), "--queries", "50", "--method", "grail",
        ]) == 0
        assert "method: grail" in capsys.readouterr().out

    def test_metrics_out(self, dag_file, tmp_path, capsys):
        out = tmp_path / "stats.jsonl"
        assert main([
            "stats", str(dag_file), "--queries", "50",
            "--metrics-out", str(out),
        ]) == 0
        assert out.exists() and (tmp_path / "stats.prom").exists()
        from repro.obs.metrics import get_registry

        assert not get_registry().enabled


class TestBuildAndIndexReuse:
    @pytest.fixture
    def dag_file(self, tmp_path):
        g = random_dag(40, avg_degree=2.0, seed=3)
        path = tmp_path / "dag.edges"
        write_edge_list(g, path)
        return path, g

    def test_build_writes_index(self, dag_file, tmp_path, capsys):
        path, _ = dag_file
        out = tmp_path / "dag.feline"
        assert main(["build", str(path), str(out)]) == 0
        assert out.exists() and out.stat().st_size > 0
        assert "built FELINE index" in capsys.readouterr().out

    def test_query_with_saved_index(self, dag_file, tmp_path):
        path, g = dag_file
        out = tmp_path / "dag.feline"
        main(["build", str(path), str(out)])
        u, v = next(iter(g.edges()))
        assert main([
            "query", str(path), str(u), str(v), "--index", str(out),
        ]) == 0
        assert main([
            "query", str(path), str(v), str(u), "--index", str(out),
            "--mmap",
        ]) == 1


class TestVerifyIndexCommand:
    @pytest.fixture
    def built(self, tmp_path):
        g = random_dag(120, avg_degree=2.5, seed=7)
        graph_path = tmp_path / "dag.edges"
        index_path = tmp_path / "dag.feline"
        write_edge_list(g, graph_path)
        main(["build", str(graph_path), str(index_path)])
        return graph_path, index_path

    def test_clean_index_exits_zero(self, built, capsys):
        graph_path, index_path = built
        assert main(["verify-index", str(graph_path), str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "[pass]" in out

    def test_mmap_flag(self, built):
        graph_path, index_path = built
        assert main([
            "verify-index", str(graph_path), str(index_path), "--mmap",
        ]) == 0

    def test_corrupt_file_exits_two(self, built, capsys):
        from repro.resilience import chaos

        graph_path, index_path = built
        chaos.flip_bytes(index_path, seed=3, flips=4)
        assert main(["verify-index", str(graph_path), str(index_path)]) == 2
        assert "UNREADABLE" in capsys.readouterr().err

    def test_truncated_file_exits_two(self, built, capsys):
        from repro.resilience import chaos

        graph_path, index_path = built
        chaos.truncate_file(index_path, index_path.stat().st_size // 2)
        assert main(["verify-index", str(graph_path), str(index_path)]) == 2
        assert "UNREADABLE" in capsys.readouterr().err

    def test_unsound_index_exits_one(self, built, capsys):
        """A readable file whose coordinates violate Theorem 1 fails with
        exit 1 (integrity), not 2 (unreadable)."""
        from repro.core.persistence import load_coordinates, save_coordinates
        from repro.resilience import chaos as chaos_mod

        graph_path, index_path = built
        coords = load_coordinates(index_path)
        bad = chaos_mod.corrupt_coordinates(coords, seed=1, mutations=3)
        save_coordinates(bad, index_path)
        assert main(["verify-index", str(graph_path), str(index_path)]) == 1
        assert "[FAIL]" in capsys.readouterr().out


class TestBudgetedQueryCommand:
    # Pair (460, 1876) on this DAG dodges both cuts and expands ~100
    # vertices of pruned DFS, so a 5-step budget trips; a bounded biBFS
    # answers it within 40 visited nodes, so fallback recovers at
    # --max-steps 10 (fallback_nodes defaults to 4x the step cap).
    @pytest.fixture(scope="class")
    def hard_dag(self, tmp_path_factory):
        g = random_dag(2000, avg_degree=2.5, seed=1)
        path = tmp_path_factory.mktemp("cli-budget") / "hard.edges"
        write_edge_list(g, path)
        return path

    def test_exhausted_budget_exits_three(self, hard_dag, capsys):
        code = main([
            "query", str(hard_dag), "460", "1876",
            "--max-steps", "5", "--on-budget", "unknown",
        ])
        assert code == 3
        assert "unknown" in capsys.readouterr().out

    def test_fallback_recovers_answer(self, hard_dag, capsys):
        code = main([
            "query", str(hard_dag), "460", "1876",
            "--max-steps", "10", "--on-budget", "fallback",
        ])
        assert code == 0
        assert "reachable" in capsys.readouterr().out

    def test_generous_budget_exits_zero(self, hard_dag):
        assert main([
            "query", str(hard_dag), "460", "1876", "--max-steps", "100000",
        ]) == 0

    def test_deadline_flag_accepted(self, hard_dag):
        assert main([
            "query", str(hard_dag), "1876", "460", "--deadline-ms", "5000",
        ]) == 1


class TestValidateAndRecommend:
    @pytest.fixture
    def dag_file(self, tmp_path):
        g = random_dag(60, avg_degree=2.0, seed=5)
        path = tmp_path / "dag.edges"
        write_edge_list(g, path)
        return path

    def test_validate_all_agree(self, dag_file, capsys):
        assert main(["validate", str(dag_file), "--queries", "100"]) == 0
        assert "ALL AGREE" in capsys.readouterr().out

    def test_recommend_prints_choice(self, dag_file, capsys):
        assert main(["recommend", str(dag_file)]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out and "because:" in out

    def test_recommend_query_heavy_flag(self, tmp_path, capsys):
        g = random_dag(2000, avg_degree=5.0, seed=6)
        path = tmp_path / "big.edges"
        write_edge_list(g, path)
        assert main(["recommend", str(path), "--query-heavy"]) == 0
        assert "recommended: feline-b" in capsys.readouterr().out


class TestWorkersFlag:
    @pytest.fixture
    def dag_file(self, tmp_path):
        g = random_dag(60, avg_degree=2.0, seed=7)
        path = tmp_path / "dag.edges"
        write_edge_list(g, path)
        return path

    def test_bench_workers_scopes_the_harness_default(self, capsys):
        from repro.bench.harness import get_default_workers

        code = main([
            "bench", "t3", "--scale", "0.02", "--queries", "20",
            "--runs", "1", "--datasets", "arxiv", "--workers", "2",
        ])
        assert code == 0
        assert "T3" in capsys.readouterr().out
        # the flag applies per invocation, not process-wide
        assert get_default_workers() == 0

    def test_serve_once_with_workers(self, dag_file, capsys):
        code = main([
            "serve", str(dag_file), "--warm", "50",
            "--workers", "2", "--once",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving feline queries" in out
        assert "GET /healthz [200]" in out
        assert "GET /reach?u=0" in out
