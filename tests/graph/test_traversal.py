"""Unit tests for traversals and naive reachability."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import (
    ancestors,
    bfs_order,
    bfs_reachable,
    bidirectional_reachable,
    descendants,
    dfs_preorder,
    dfs_reachable,
)

from tests.conftest import reachability_oracle


class TestOrders:
    def test_dfs_preorder_starts_at_source(self, paper_dag):
        assert next(dfs_preorder(paper_dag, 0)) == 0

    def test_dfs_preorder_visits_reachable_set(self, paper_dag):
        visited = set(dfs_preorder(paper_dag, 0))
        assert visited == {0, 2, 3, 4, 7}

    def test_bfs_orders_by_distance(self):
        g = DiGraph(4, [(0, 1), (1, 2), (0, 3)])
        order = list(bfs_order(g, 0))
        assert order[0] == 0
        assert set(order[1:3]) == {1, 3}
        assert order[3] == 2

    def test_each_vertex_visited_once(self):
        g = random_dag(100, avg_degree=3.0, seed=2)
        visited = list(dfs_preorder(g, 0))
        assert len(visited) == len(set(visited))


class TestReachability:
    def test_reflexive(self, paper_dag):
        for v in paper_dag.vertices():
            assert dfs_reachable(paper_dag, v, v)
            assert bfs_reachable(paper_dag, v, v)
            assert bidirectional_reachable(paper_dag, v, v)

    def test_all_three_agree_with_oracle(self, any_dag):
        oracle = reachability_oracle(any_dag)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                expected = oracle(u, v)
                assert dfs_reachable(any_dag, u, v) == expected
                assert bfs_reachable(any_dag, u, v) == expected
                assert bidirectional_reachable(any_dag, u, v) == expected

    def test_direct_edge(self, diamond):
        assert dfs_reachable(diamond, 0, 1)
        assert bidirectional_reachable(diamond, 0, 1)

    def test_unreachable_sibling(self, diamond):
        assert not dfs_reachable(diamond, 1, 2)
        assert not bfs_reachable(diamond, 1, 2)
        assert not bidirectional_reachable(diamond, 1, 2)


class TestSets:
    def test_descendants_includes_self(self, diamond):
        assert descendants(diamond, 3) == {3}

    def test_descendants_full(self, diamond):
        assert descendants(diamond, 0) == {0, 1, 2, 3}

    def test_ancestors_mirror_descendants(self, any_dag):
        n = any_dag.num_vertices
        if n == 0:
            return
        v = n // 2
        assert ancestors(any_dag, v) == {
            u for u in range(n) if v in descendants(any_dag, u)
        }
