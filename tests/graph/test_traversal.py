"""Unit tests for traversals and naive reachability."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import (
    ancestors,
    bfs_order,
    bfs_reachable,
    bidirectional_reachable,
    descendants,
    dfs_preorder,
    dfs_reachable,
)

from tests.conftest import reachability_oracle


class TestOrders:
    def test_dfs_preorder_starts_at_source(self, paper_dag):
        assert next(dfs_preorder(paper_dag, 0)) == 0

    def test_dfs_preorder_visits_reachable_set(self, paper_dag):
        visited = set(dfs_preorder(paper_dag, 0))
        assert visited == {0, 2, 3, 4, 7}

    def test_bfs_orders_by_distance(self):
        g = DiGraph(4, [(0, 1), (1, 2), (0, 3)])
        order = list(bfs_order(g, 0))
        assert order[0] == 0
        assert set(order[1:3]) == {1, 3}
        assert order[3] == 2

    def test_each_vertex_visited_once(self):
        g = random_dag(100, avg_degree=3.0, seed=2)
        visited = list(dfs_preorder(g, 0))
        assert len(visited) == len(set(visited))


class TestReachability:
    def test_reflexive(self, paper_dag):
        for v in paper_dag.vertices():
            assert dfs_reachable(paper_dag, v, v)
            assert bfs_reachable(paper_dag, v, v)
            assert bidirectional_reachable(paper_dag, v, v)

    def test_all_three_agree_with_oracle(self, any_dag):
        oracle = reachability_oracle(any_dag)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                expected = oracle(u, v)
                assert dfs_reachable(any_dag, u, v) == expected
                assert bfs_reachable(any_dag, u, v) == expected
                assert bidirectional_reachable(any_dag, u, v) == expected

    def test_direct_edge(self, diamond):
        assert dfs_reachable(diamond, 0, 1)
        assert bidirectional_reachable(diamond, 0, 1)

    def test_unreachable_sibling(self, diamond):
        assert not dfs_reachable(diamond, 1, 2)
        assert not bfs_reachable(diamond, 1, 2)
        assert not bidirectional_reachable(diamond, 1, 2)


class TestScratchReuse:
    def test_bidirectional_reuses_one_scratch_per_graph(self):
        # The timestamped visited buffers replace the two per-call
        # bytearray(n) allocations: same arrays every call, only the
        # stamp moves.
        from repro.graph.traversal import _bi_scratch

        g = random_dag(80, avg_degree=2.0, seed=6)
        bidirectional_reachable(g, 0, 79)
        scratch = _bi_scratch(g)
        fwd, bwd, stamp = scratch.fwd, scratch.bwd, scratch.stamp
        oracle = reachability_oracle(g)
        for u, v in [(0, 79), (79, 0), (3, 40), (40, 3)]:
            assert bidirectional_reachable(g, u, v) == oracle(u, v)
        again = _bi_scratch(g)
        assert again is scratch
        assert again.fwd is fwd and again.bwd is bwd
        assert again.stamp == stamp + 4  # one bump per search

    def test_bounded_search_shares_the_same_scratch(self):
        from repro.graph.traversal import (
            _bi_scratch,
            bounded_bidirectional_reachable,
        )

        g = random_dag(60, avg_degree=2.0, seed=8)
        bidirectional_reachable(g, 0, 59)
        scratch = _bi_scratch(g)
        stamp = scratch.stamp
        assert bounded_bidirectional_reachable(g, 0, 59, 1_000_000) in (
            True, False,
        )
        assert _bi_scratch(g) is scratch
        assert scratch.stamp == stamp + 1

    def test_scratch_dies_with_the_graph(self):
        import gc
        import weakref

        g = random_dag(30, avg_degree=2.0, seed=9)
        bidirectional_reachable(g, 0, 29)
        ref = weakref.ref(g)
        del g
        gc.collect()
        assert ref() is None, "scratch cache kept the graph alive"


class TestSets:
    def test_descendants_includes_self(self, diamond):
        assert descendants(diamond, 3) == {3}

    def test_descendants_full(self, diamond):
        assert descendants(diamond, 0) == {0, 1, 2, 3}

    def test_ancestors_mirror_descendants(self, any_dag):
        n = any_dag.num_vertices
        if n == 0:
            return
        v = n // 2
        assert ancestors(any_dag, v) == {
            u for u in range(n) if v in descendants(any_dag, u)
        }
