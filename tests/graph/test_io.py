"""Unit tests for graph serialisation."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.io import (
    read_edge_list,
    read_gra,
    to_dot,
    write_edge_list,
    write_gra,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path, paper_dag):
        path = tmp_path / "g.edges"
        write_edge_list(paper_dag, path)
        loaded = read_edge_list(path)
        assert sorted(loaded.edges()) == sorted(paper_dag.edges())

    def test_round_trip_gzip(self, tmp_path):
        g = random_dag(50, avg_degree=2.0, seed=1)
        path = tmp_path / "g.edges.gz"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# header\n\n0 1\n# mid comment\n1 2\n")
        g = read_edge_list(path)
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected 'u v'"):
            read_edge_list(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("a b\n")
        with pytest.raises(GraphError, match="non-integer"):
            read_edge_list(path)

    def test_dedup_option(self, tmp_path):
        path = tmp_path / "dup.edges"
        path.write_text("0 1\n0 1\n")
        assert read_edge_list(path, dedup=True).num_edges == 1
        assert read_edge_list(path).num_edges == 2

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.edges"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"


class TestGraFormat:
    def test_round_trip(self, tmp_path, paper_dag):
        path = tmp_path / "g.gra"
        write_gra(paper_dag, path)
        loaded = read_gra(path)
        assert loaded.num_vertices == paper_dag.num_vertices
        assert sorted(loaded.edges()) == sorted(paper_dag.edges())

    def test_format_layout(self, tmp_path):
        g = DiGraph(2, [(0, 1)])
        path = tmp_path / "g.gra"
        write_gra(g, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "graph_for_greach"
        assert lines[1] == "2"
        assert lines[2] == "0: 1 #"
        assert lines[3] == "1: #"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.gra"
        path.write_text("")
        with pytest.raises(GraphError):
            read_gra(path)

    def test_bad_count_raises(self, tmp_path):
        path = tmp_path / "bad.gra"
        path.write_text("graph_for_greach\nnope\n")
        with pytest.raises(GraphError):
            read_gra(path)

    def test_isolated_vertices_preserved(self, tmp_path):
        g = DiGraph(5, [(0, 1)])
        path = tmp_path / "g.gra"
        write_gra(g, path)
        assert read_gra(path).num_vertices == 5


class TestDot:
    def test_contains_all_edges(self, diamond):
        dot = to_dot(diamond)
        assert "0 -> 1;" in dot and "2 -> 3;" in dot
        assert dot.startswith("digraph G {") and dot.endswith("}")

    def test_labels_rendered(self, diamond):
        dot = to_dot(diamond, labels={0: "root"})
        assert '0 [label="root"];' in dot
