"""Unit tests for spanning forests and min-post interval labels."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.spanning import (
    extract_spanning_forest,
    minpost_intervals_dag,
    minpost_intervals_tree,
)
from repro.graph.traversal import dfs_reachable

from random import Random

from tests.conftest import reachability_oracle


class TestSpanningForest:
    def test_every_vertex_covered(self, any_dag):
        forest = extract_spanning_forest(any_dag)
        assert forest.num_vertices == any_dag.num_vertices

    def test_parents_are_graph_edges(self, any_dag):
        forest = extract_spanning_forest(any_dag)
        for v in range(any_dag.num_vertices):
            parent = forest.parent[v]
            if parent != -1:
                assert any_dag.has_edge(parent, v)

    def test_children_consistent_with_parent(self, any_dag):
        forest = extract_spanning_forest(any_dag)
        for v in range(any_dag.num_vertices):
            for child in forest.children[v]:
                assert forest.parent[child] == v

    def test_forest_is_acyclic_and_connected_to_roots(self, any_dag):
        forest = extract_spanning_forest(any_dag)
        for v in range(any_dag.num_vertices):
            seen = set()
            node = v
            while node != -1:
                assert node not in seen  # no parent cycles
                seen.add(node)
                node = forest.parent[node]

    def test_roots_have_no_graph_predecessor_or_were_cross_reached(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        forest = extract_spanning_forest(g)
        assert forest.tree_roots() == [0]


class TestTreeIntervals:
    def test_containment_iff_tree_descendant(self, any_dag):
        forest = extract_spanning_forest(any_dag)
        labels = minpost_intervals_tree(forest)
        # Build the tree's descendant sets explicitly.
        n = any_dag.num_vertices
        for u in range(n):
            tree_desc = set()
            stack = [u]
            while stack:
                w = stack.pop()
                tree_desc.add(w)
                stack.extend(forest.children[w])
            for v in range(n):
                assert labels.contains(u, v) == (v in tree_desc), (u, v)

    def test_positive_cut_soundness(self, any_dag):
        """Tree containment must imply real reachability (never lie)."""
        forest = extract_spanning_forest(any_dag)
        labels = minpost_intervals_tree(forest)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                if labels.contains(u, v):
                    assert dfs_reachable(any_dag, u, v)

    def test_memory_accounting(self, paper_dag):
        forest = extract_spanning_forest(paper_dag)
        labels = minpost_intervals_tree(forest)
        assert labels.memory_bytes() == 2 * 8 * 8  # two arrays of 8 longs


class TestDagIntervals:
    def test_negative_cut_soundness(self, any_dag):
        """Reachability must imply containment (non-containment is a cut)."""
        labels = minpost_intervals_dag(any_dag)
        oracle = reachability_oracle(any_dag)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                if oracle(u, v):
                    assert labels.contains(u, v), (u, v)

    def test_randomized_traversals_differ(self):
        g = random_dag(80, avg_degree=2.0, seed=1)
        a = minpost_intervals_dag(g, rng=Random(1))
        b = minpost_intervals_dag(g, rng=Random(2))
        assert list(a.post) != list(b.post) or list(a.start) != list(b.start)

    def test_randomized_still_sound(self):
        g = random_dag(60, avg_degree=2.5, seed=3)
        labels = minpost_intervals_dag(g, rng=Random(7))
        oracle = reachability_oracle(g)
        for u in range(60):
            for v in range(60):
                if oracle(u, v):
                    assert labels.contains(u, v)

    def test_post_is_permutation(self, any_dag):
        labels = minpost_intervals_dag(any_dag)
        assert sorted(labels.post) == list(range(any_dag.num_vertices))
