"""Unit tests for the transitive closure substrate."""

import pytest

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_dag, path_graph
from repro.graph.transitive import (
    closure_pairs,
    count_reachable_pairs,
    transitive_closure_bitsets,
)
from repro.graph.traversal import dfs_reachable


class TestClosure:
    def test_matches_dfs_on_zoo(self, any_dag):
        closure = transitive_closure_bitsets(any_dag)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                assert bool((closure[u] >> v) & 1) == dfs_reachable(
                    any_dag, u, v
                )

    def test_reflexive_bits_set(self, any_dag):
        closure = transitive_closure_bitsets(any_dag)
        for v in range(any_dag.num_vertices):
            assert (closure[v] >> v) & 1

    def test_cycle_raises(self):
        with pytest.raises(NotADAGError):
            transitive_closure_bitsets(DiGraph(2, [(0, 1), (1, 0)]))


class TestPairs:
    def test_path_pair_count(self):
        # n-vertex path: n(n-1)/2 ordered reachable pairs.
        g = path_graph(6)
        assert count_reachable_pairs(g) == 15

    def test_complete_dag_pair_count(self):
        g = complete_dag(5)
        assert count_reachable_pairs(g) == 10

    def test_edgeless_graph_no_pairs(self):
        assert count_reachable_pairs(DiGraph(4, [])) == 0

    def test_closure_pairs_excludes_reflexive(self, paper_dag):
        pairs = list(closure_pairs(paper_dag))
        assert all(u != v for u, v in pairs)

    def test_closure_pairs_matches_count(self, any_dag):
        assert len(list(closure_pairs(any_dag))) == count_reachable_pairs(
            any_dag
        )

    def test_paper_dag_known_pairs(self, paper_dag):
        pairs = set(closure_pairs(paper_dag))
        assert (0, 7) in pairs  # a reaches h via c/d -> e
        assert (1, 7) in pairs  # b reaches h via f
        assert (0, 6) not in pairs  # a does not reach g
