"""Unit tests for Tarjan SCC and condensation."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.scc import condense, is_dag, strongly_connected_components
from repro.graph.traversal import dfs_reachable


class TestSCC:
    def test_single_vertex(self):
        components = strongly_connected_components(DiGraph(1, []))
        assert components == [[0]]

    def test_dag_gives_singletons(self, paper_dag):
        components = strongly_connected_components(paper_dag)
        assert sorted(len(c) for c in components) == [1] * 8

    def test_simple_cycle_is_one_component(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2]

    def test_two_cycles_bridge(self):
        # 0<->1 -> 2<->3
        g = DiGraph(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        components = strongly_connected_components(g)
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]

    def test_self_loop_is_its_own_component(self):
        g = DiGraph(2, [(0, 0), (0, 1)])
        components = strongly_connected_components(g)
        assert sorted(sorted(c) for c in components) == [[0], [1]]

    def test_every_vertex_appears_exactly_once(self):
        g = random_digraph(200, 600, seed=11)
        components = strongly_connected_components(g)
        flattened = sorted(v for c in components for v in c)
        assert flattened == list(range(200))

    def test_agrees_with_mutual_reachability(self):
        g = random_digraph(40, 90, seed=5)
        components = strongly_connected_components(g)
        component_of = {}
        for cid, component in enumerate(components):
            for v in component:
                component_of[v] = cid
        for u in range(40):
            for v in range(40):
                same = component_of[u] == component_of[v]
                mutual = dfs_reachable(g, u, v) and dfs_reachable(g, v, u)
                assert same == mutual

    def test_deep_path_no_recursion_error(self):
        n = 30000
        g = DiGraph(n, [(i, i + 1) for i in range(n - 1)])
        components = strongly_connected_components(g)
        assert len(components) == n


class TestCondense:
    def test_condensation_is_dag(self):
        g = random_digraph(100, 300, seed=3)
        assert is_dag(condense(g).dag)

    def test_condensation_preserves_reachability(self):
        g = random_digraph(30, 70, seed=9)
        result = condense(g)
        for u in range(30):
            for v in range(30):
                original = dfs_reachable(g, u, v)
                folded = dfs_reachable(
                    result.dag, result.scc_of[u], result.scc_of[v]
                )
                assert original == folded, (u, v)

    def test_members_partition_vertices(self):
        g = random_digraph(50, 140, seed=4)
        result = condense(g)
        flattened = sorted(v for ms in result.members for v in ms)
        assert flattened == list(range(50))

    def test_scc_of_consistent_with_members(self):
        g = random_digraph(50, 140, seed=4)
        result = condense(g)
        for cid, members in enumerate(result.members):
            assert all(result.scc_of[v] == cid for v in members)

    def test_components_numbered_topologically(self):
        g = random_digraph(60, 150, seed=8)
        result = condense(g)
        for cu, cv in result.dag.edges():
            assert cu < cv

    def test_condensing_dag_keeps_all_vertices(self, paper_dag):
        result = condense(paper_dag)
        assert result.num_components == 8
        assert result.dag.num_edges == paper_dag.num_edges

    def test_self_loops_removed(self):
        g = DiGraph(2, [(0, 0), (0, 1)])
        result = condense(g)
        assert result.dag.num_edges == 1

    def test_parallel_scc_edges_merged(self):
        # Two edges between the same pair of components collapse to one.
        g = DiGraph(4, [(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)])
        result = condense(g)
        assert result.dag.num_edges == 2


class TestIsDag:
    def test_dag_detected(self, paper_dag):
        assert is_dag(paper_dag)

    def test_cycle_detected(self):
        assert not is_dag(DiGraph(2, [(0, 1), (1, 0)]))

    def test_self_loop_detected(self):
        assert not is_dag(DiGraph(1, [(0, 0)]))

    def test_empty_graph_is_dag(self):
        assert is_dag(DiGraph(0, []))
