"""Unit tests for level (depth) computation."""

import pytest

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels, level_histogram
from repro.graph.traversal import dfs_reachable


class TestComputeLevels:
    def test_roots_are_level_zero(self, any_dag):
        levels = compute_levels(any_dag)
        for v in any_dag.roots():
            assert levels[v] == 0

    def test_level_is_one_plus_max_predecessor(self, any_dag):
        levels = compute_levels(any_dag)
        for v in range(any_dag.num_vertices):
            preds = list(any_dag.predecessors(v))
            if preds:
                assert levels[v] == 1 + max(levels[p] for p in preds)

    def test_level_filter_invariant(self, any_dag):
        """r(u, v) with u != v implies level(u) < level(v) — §3.4.2."""
        levels = compute_levels(any_dag)
        n = any_dag.num_vertices
        for u in range(n):
            for v in range(n):
                if u != v and dfs_reachable(any_dag, u, v):
                    assert levels[u] < levels[v]

    def test_path_graph_levels(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert list(compute_levels(g)) == [0, 1, 2, 3]

    def test_longest_path_not_shortest(self):
        # 0 -> 3 directly and via 1 -> 2: level of 3 is the LONGEST path.
        g = DiGraph(4, [(0, 3), (0, 1), (1, 2), (2, 3)])
        assert compute_levels(g)[3] == 3

    def test_cycle_raises(self):
        with pytest.raises(NotADAGError):
            compute_levels(DiGraph(2, [(0, 1), (1, 0)]))

    def test_empty_graph(self):
        assert list(compute_levels(DiGraph(0, []))) == []


class TestHistogram:
    def test_histogram_sums_to_vertex_count(self, any_dag):
        levels = compute_levels(any_dag)
        histogram = level_histogram(levels)
        assert sum(histogram) == any_dag.num_vertices

    def test_histogram_empty(self):
        assert level_histogram(compute_levels(DiGraph(0, []))) == []

    def test_histogram_path(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        assert level_histogram(compute_levels(g)) == [1, 1, 1]
