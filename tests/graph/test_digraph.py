"""Unit tests for the CSR DiGraph representation."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_without_edges(self):
        g = DiGraph(5, [])
        assert g.num_vertices == 5
        assert all(g.out_degree(v) == 0 for v in g.vertices())
        assert all(g.in_degree(v) == 0 for v in g.vertices())

    def test_simple_edges(self):
        g = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_edges == 3
        assert sorted(g.successors(0)) == [1, 2]
        assert list(g.successors(1)) == [2]
        assert list(g.successors(2)) == []

    def test_predecessors_mirror_successors(self):
        g = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert list(g.predecessors(0)) == []
        assert list(g.predecessors(1)) == [0]
        assert sorted(g.predecessors(2)) == [0, 1]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1, [])

    def test_out_of_range_source_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(2, [(2, 0)])

    def test_out_of_range_target_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(2, [(0, 5)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(2, [(0, -1)])

    def test_duplicate_edges_kept(self):
        g = DiGraph(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2
        assert list(g.successors(0)) == [1, 1]

    def test_self_loop_allowed_in_raw_graph(self):
        g = DiGraph(2, [(0, 0), (0, 1)])
        assert g.num_edges == 2
        assert 0 in g.successors(0)


class TestFactories:
    def test_from_edges_infers_vertex_count(self):
        g = DiGraph.from_edges([(0, 4), (2, 3)])
        assert g.num_vertices == 5

    def test_from_edges_empty(self):
        g = DiGraph.from_edges([])
        assert g.num_vertices == 0

    def test_from_edges_explicit_count(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10

    def test_from_adjacency(self):
        g = DiGraph.from_adjacency([[1, 2], [2], []])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert sorted(g.successors(0)) == [1, 2]


class TestAccessors:
    def test_edges_iteration_order_groups_by_source(self, paper_dag):
        edges = list(paper_dag.edges())
        assert len(edges) == paper_dag.num_edges
        sources = [u for u, _ in edges]
        assert sources == sorted(sources)

    def test_has_edge(self, paper_dag):
        assert paper_dag.has_edge(0, 2)
        assert not paper_dag.has_edge(2, 0)
        assert not paper_dag.has_edge(0, 7)

    def test_roots_and_leaves(self, paper_dag):
        assert sorted(paper_dag.roots()) == [0, 1]
        assert sorted(paper_dag.leaves()) == [6, 7]

    def test_degrees(self, paper_dag):
        assert paper_dag.out_degree(0) == 2
        assert paper_dag.in_degree(7) == 2
        assert paper_dag.in_degree(0) == 0

    def test_len_is_vertex_count(self, paper_dag):
        assert len(paper_dag) == 8

    def test_repr_mentions_counts(self, paper_dag):
        text = repr(paper_dag)
        assert "|V|=8" in text and "|E|=8" in text


class TestReversed:
    def test_reversal_flips_edges(self, paper_dag):
        rev = paper_dag.reversed()
        assert sorted(rev.edges()) == sorted(
            (v, u) for u, v in paper_dag.edges()
        )

    def test_reversal_swaps_roots_and_leaves(self, paper_dag):
        rev = paper_dag.reversed()
        assert sorted(rev.roots()) == sorted(paper_dag.leaves())
        assert sorted(rev.leaves()) == sorted(paper_dag.roots())

    def test_double_reversal_is_identity(self, paper_dag):
        twice = paper_dag.reversed().reversed()
        assert sorted(twice.edges()) == sorted(paper_dag.edges())

    def test_reversal_shares_no_copy_cost(self, paper_dag):
        rev = paper_dag.reversed()
        # CSR arrays are shared views, not copies.
        assert rev.out_indptr is paper_dag.in_indptr
        assert rev.in_indices is paper_dag.out_indices


class TestMemory:
    def test_memory_bytes_positive(self, paper_dag):
        assert paper_dag.memory_bytes() > 0

    def test_memory_grows_with_edges(self):
        small = DiGraph(10, [(0, 1)])
        large = DiGraph(10, [(i, j) for i in range(5) for j in range(5, 10)])
        assert large.memory_bytes() > small.memory_bytes()
