"""Unit tests for dynamic graphs and Pearce–Kelly online topological order."""

from random import Random

import pytest

from repro.exceptions import GraphError, NotADAGError
from repro.graph.dynamic import DynamicDiGraph, DynamicTopologicalOrder
from repro.graph.generators import random_dag


class TestDynamicDiGraph:
    def test_empty(self):
        g = DynamicDiGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_add_vertex_sequential(self):
        g = DynamicDiGraph()
        assert g.add_vertex() == 0
        assert g.add_vertex() == 1

    def test_add_edge_and_adjacency(self):
        g = DynamicDiGraph(3)
        g.add_edge_unchecked(0, 2)
        assert g.successors(0) == [2]
        assert g.predecessors(2) == [0]
        assert g.num_edges == 1

    def test_out_of_range_rejected(self):
        g = DynamicDiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge_unchecked(0, 5)

    def test_remove_edge(self):
        g = DynamicDiGraph(2)
        g.add_edge_unchecked(0, 1)
        g.remove_edge(0, 1)
        assert g.num_edges == 0
        assert g.successors(0) == []

    def test_remove_missing_edge_raises(self):
        g = DynamicDiGraph(2)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_from_edges(self):
        g = DynamicDiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert list(g.edges()) == [(0, 1), (1, 2)]


class TestDynamicTopologicalOrder:
    def test_initial_order_validated(self):
        g = DynamicDiGraph.from_edges(2, [(1, 0)])
        with pytest.raises(GraphError, match="violates"):
            DynamicTopologicalOrder(g, initial_order=[0, 1])

    def test_bad_permutation_rejected(self):
        g = DynamicDiGraph(2)
        with pytest.raises(GraphError, match="permutation"):
            DynamicTopologicalOrder(g, initial_order=[0, 0])

    def test_forward_edge_no_reorder(self):
        g = DynamicDiGraph(3)
        order = DynamicTopologicalOrder(g)
        assert order.insert_edge(0, 2) is False
        assert order.is_consistent()

    def test_backward_edge_reorders(self):
        g = DynamicDiGraph(3)
        order = DynamicTopologicalOrder(g)
        assert order.insert_edge(2, 0) is True
        assert order.is_consistent()
        assert order.ranks[2] < order.ranks[0]

    def test_cycle_rejected_and_graph_untouched(self):
        g = DynamicDiGraph(3)
        order = DynamicTopologicalOrder(g)
        order.insert_edge(0, 1)
        order.insert_edge(1, 2)
        with pytest.raises(NotADAGError):
            order.insert_edge(2, 0)
        assert g.num_edges == 2
        assert order.is_consistent()

    def test_self_loop_rejected(self):
        g = DynamicDiGraph(2)
        order = DynamicTopologicalOrder(g)
        with pytest.raises(NotADAGError):
            order.insert_edge(1, 1)

    def test_append_vertex(self):
        g = DynamicDiGraph(2)
        order = DynamicTopologicalOrder(g)
        g.add_vertex()
        v = order.append_vertex()
        assert v == 2
        order.insert_edge(2, 0)
        assert order.is_consistent()

    def test_random_insertion_stream_stays_consistent(self):
        """Replay a random DAG edge by edge in random order: the order
        must be valid after every single insertion."""
        target = random_dag(60, avg_degree=2.5, seed=5)
        edges = list(target.edges())
        Random(9).shuffle(edges)
        g = DynamicDiGraph(60)
        order = DynamicTopologicalOrder(g)
        for u, v in edges:
            order.insert_edge(u, v)
            assert order.is_consistent()
        assert g.num_edges == target.num_edges

    def test_order_method_matches_ranks(self):
        g = DynamicDiGraph(4)
        order = DynamicTopologicalOrder(g)
        order.insert_edge(3, 1)
        listed = order.order()
        for rank, v in enumerate(listed):
            assert order.ranks[v] == rank

    def test_priority_biases_reorder(self):
        # Two equivalent repairs exist; priority picks deterministically.
        g1 = DynamicDiGraph(4)
        a = DynamicTopologicalOrder(g1, priority=[0, 1, 2, 3])
        a.insert_edge(3, 0)
        g2 = DynamicDiGraph(4)
        b = DynamicTopologicalOrder(g2, priority=[3, 2, 1, 0])
        b.insert_edge(3, 0)
        assert a.is_consistent() and b.is_consistent()
