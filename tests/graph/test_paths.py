"""Unit tests for witness-path extraction."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_digraph
from repro.graph.paths import find_path
from repro.graph.traversal import dfs_reachable


class TestFindPath:
    def test_trivial_path(self, paper_dag):
        assert find_path(paper_dag, 3, 3) == [3]

    def test_direct_edge(self, paper_dag):
        assert find_path(paper_dag, 0, 2) == [0, 2]

    def test_multi_hop(self, paper_dag):
        path = find_path(paper_dag, 0, 7)
        assert path[0] == 0 and path[-1] == 7
        for a, b in zip(path, path[1:]):
            assert paper_dag.has_edge(a, b)

    def test_unreachable_returns_none(self, paper_dag):
        assert find_path(paper_dag, 7, 0) is None
        assert find_path(paper_dag, 0, 6) is None

    def test_path_is_shortest(self):
        # 0 -> 3 directly and via 1 -> 2: BFS must take the direct edge.
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert find_path(g, 0, 3) == [0, 3]

    def test_every_returned_path_is_valid(self, any_dag):
        n = any_dag.num_vertices
        for u in range(min(n, 10)):
            for v in range(min(n, 10)):
                path = find_path(any_dag, u, v)
                if path is None:
                    assert not dfs_reachable(any_dag, u, v)
                else:
                    assert path[0] == u and path[-1] == v
                    for a, b in zip(path, path[1:]):
                        assert any_dag.has_edge(a, b)

    def test_works_on_cyclic_graphs(self):
        g = random_digraph(40, 120, seed=1)
        for u in range(10):
            for v in range(10):
                path = find_path(g, u, v)
                assert (path is not None) == dfs_reachable(g, u, v)


class TestFacadeWitness:
    def test_witness_through_cycles(self):
        import repro

        r = repro.Reachability([(0, 1), (1, 0), (1, 2)])
        path = r.witness_path(0, 2)
        assert path[0] == 0 and path[-1] == 2

    def test_witness_none_when_unreachable(self):
        import repro

        r = repro.Reachability([(0, 1)])
        assert r.witness_path(1, 0) is None
