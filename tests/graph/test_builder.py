"""Unit tests for GraphBuilder."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder


class TestBasics:
    def test_empty_builder(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_add_vertex_returns_sequential_ids(self):
        b = GraphBuilder()
        assert b.add_vertex() == 0
        assert b.add_vertex() == 1
        assert b.num_vertices == 2

    def test_add_edge_within_bounds(self):
        b = GraphBuilder(num_vertices=3)
        b.add_edge(0, 2)
        assert b.num_edges == 1
        g = b.build()
        assert g.has_edge(0, 2)

    def test_add_edges_bulk(self):
        b = GraphBuilder(num_vertices=4)
        b.add_edges([(0, 1), (1, 2), (2, 3)])
        assert b.num_edges == 3

    def test_out_of_bounds_rejected_without_auto_grow(self):
        b = GraphBuilder(num_vertices=2)
        with pytest.raises(GraphError):
            b.add_edge(0, 5)

    def test_negative_id_rejected(self):
        b = GraphBuilder(auto_grow=True)
        with pytest.raises(GraphError):
            b.add_edge(-1, 0)

    def test_negative_initial_count_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(num_vertices=-2)


class TestAutoGrow:
    def test_auto_grow_extends_vertex_count(self):
        b = GraphBuilder(auto_grow=True)
        b.add_edge(0, 7)
        assert b.num_vertices == 8

    def test_ensure_vertices_grows(self):
        b = GraphBuilder()
        b.ensure_vertices(10)
        assert b.num_vertices == 10

    def test_ensure_vertices_never_shrinks(self):
        b = GraphBuilder(num_vertices=5)
        b.ensure_vertices(2)
        assert b.num_vertices == 5


class TestCleanups:
    def test_dedup_drops_duplicates(self):
        b = GraphBuilder(num_vertices=2, dedup=True)
        b.add_edge(0, 1)
        b.add_edge(0, 1)
        assert b.num_edges == 1

    def test_without_dedup_duplicates_kept(self):
        b = GraphBuilder(num_vertices=2)
        b.add_edge(0, 1)
        b.add_edge(0, 1)
        assert b.num_edges == 2

    def test_drop_self_loops(self):
        b = GraphBuilder(num_vertices=2, drop_self_loops=True)
        b.add_edge(0, 0)
        b.add_edge(0, 1)
        assert b.num_edges == 1

    def test_build_names_graph(self):
        g = GraphBuilder(num_vertices=1).build(name="tiny")
        assert g.name == "tiny"
