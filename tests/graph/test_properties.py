"""Unit tests for structural graph statistics (Table 1 columns)."""

import math

from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_dag, path_graph, random_dag
from repro.graph.properties import (
    clustering_coefficient,
    degree_statistics,
    effective_diameter,
    graph_summary,
)


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert clustering_coefficient(g) == 1.0

    def test_path_has_zero_clustering(self):
        assert clustering_coefficient(path_graph(10)) == 0.0

    def test_complete_dag_fully_clustered(self):
        assert clustering_coefficient(complete_dag(6)) == 1.0

    def test_empty_graph(self):
        assert clustering_coefficient(DiGraph(0, [])) == 0.0

    def test_star_has_zero_clustering(self):
        g = DiGraph(5, [(0, i) for i in range(1, 5)])
        assert clustering_coefficient(g) == 0.0

    def test_range(self):
        g = random_dag(100, avg_degree=3.0, seed=1)
        assert 0.0 <= clustering_coefficient(g) <= 1.0


class TestEffectiveDiameter:
    def test_path_diameter_close_to_percentile(self):
        # On the 11-vertex path, pairwise distances are 1..10; the 90th
        # percentile sits near 9.
        d = effective_diameter(path_graph(11), sample_size=11)
        assert 7.0 <= d <= 10.0

    def test_complete_graph_diameter_one(self):
        assert effective_diameter(complete_dag(8), sample_size=8) == 1.0

    def test_empty_graph(self):
        assert effective_diameter(DiGraph(0, [])) == 0.0

    def test_edgeless_graph(self):
        assert effective_diameter(DiGraph(5, [])) == 0.0

    def test_deterministic_given_seed(self):
        g = random_dag(200, avg_degree=2.0, seed=3)
        assert effective_diameter(g, seed=1) == effective_diameter(g, seed=1)


class TestDegreeStatistics:
    def test_path(self):
        stats = degree_statistics(path_graph(5))
        assert stats.num_roots == 1
        assert stats.num_leaves == 1
        assert stats.max_out_degree == 1
        assert stats.mean_degree == 4 / 5

    def test_diamond(self, diamond):
        stats = degree_statistics(diamond)
        assert stats.num_roots == 1
        assert stats.num_leaves == 1
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2

    def test_edgeless(self):
        stats = degree_statistics(DiGraph(3, []))
        assert stats.num_roots == 3
        assert stats.num_leaves == 3
        assert stats.mean_degree == 0.0


class TestSummary:
    def test_summary_fields(self, paper_dag):
        summary = graph_summary(paper_dag)
        assert summary.name == "paper-fig2"
        assert summary.num_vertices == 8
        assert summary.num_edges == 8
        assert summary.num_roots == 2
        assert summary.num_leaves == 2
        assert summary.eff_diameter > 0
        assert not math.isnan(summary.clustering)
