"""Unit tests for topological orderings."""

import pytest

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.toposort import (
    dfs_post_order_ranks,
    dfs_topological_order,
    is_topological_order,
    kahn_order,
    priority_kahn_order,
    ranks_from_order,
)


class TestKahn:
    def test_valid_order_on_zoo(self, any_dag):
        order = kahn_order(any_dag)
        assert is_topological_order(any_dag, order)

    def test_cycle_raises(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(NotADAGError) as excinfo:
            kahn_order(g)
        assert excinfo.value.cycle_hint in (0, 1, 2)

    def test_empty_graph(self):
        assert kahn_order(DiGraph(0, [])) == []


class TestPriorityKahn:
    def test_valid_order_on_zoo(self, any_dag):
        x_ranks = ranks_from_order(kahn_order(any_dag))
        order = priority_kahn_order(any_dag, key=lambda v: -x_ranks[v])
        assert is_topological_order(any_dag, order)

    def test_priority_respected_among_simultaneous_roots(self):
        # Two independent roots: priority alone decides who goes first.
        g = DiGraph(4, [(0, 2), (1, 3)])
        order = priority_kahn_order(g, key=lambda v: -v)
        assert order[0] == 1  # highest id = lowest key

    def test_ties_broken_deterministically(self):
        g = DiGraph(3, [])
        first = priority_kahn_order(g, key=lambda v: 0)
        second = priority_kahn_order(g, key=lambda v: 0)
        assert first == second

    def test_cycle_raises(self):
        g = DiGraph(2, [(0, 1), (1, 0)])
        with pytest.raises(NotADAGError):
            priority_kahn_order(g, key=lambda v: v)


class TestDFSOrders:
    def test_post_order_ranks_are_permutation(self, any_dag):
        ranks = dfs_post_order_ranks(any_dag)
        assert sorted(ranks) == list(range(any_dag.num_vertices))

    def test_post_order_respects_edges(self, any_dag):
        # In a DAG DFS, a target always finishes before its source.
        ranks = dfs_post_order_ranks(any_dag)
        for u, v in any_dag.edges():
            assert ranks[v] < ranks[u]

    def test_dfs_topological_order_valid(self, any_dag):
        order = dfs_topological_order(any_dag)
        assert is_topological_order(any_dag, order)

    def test_dfs_topological_order_cycle_raises(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(NotADAGError):
            dfs_topological_order(g)

    def test_root_order_changes_result(self):
        g = DiGraph(4, [(0, 2), (1, 2), (2, 3)])
        default = dfs_post_order_ranks(g)
        flipped = dfs_post_order_ranks(g, root_order=[1, 0, 2, 3])
        assert list(default) != list(flipped)

    def test_deep_path_no_recursion_error(self):
        n = 30000
        g = DiGraph(n, [(i, i + 1) for i in range(n - 1)])
        order = dfs_topological_order(g)
        assert order == list(range(n))


class TestHelpers:
    def test_ranks_from_order_inverts(self):
        order = [2, 0, 1]
        ranks = ranks_from_order(order)
        assert list(ranks) == [1, 2, 0]

    def test_is_topological_order_rejects_non_permutation(self, paper_dag):
        assert not is_topological_order(paper_dag, [0] * 8)

    def test_is_topological_order_rejects_edge_violation(self):
        g = DiGraph(2, [(0, 1)])
        assert not is_topological_order(g, [1, 0])
        assert is_topological_order(g, [0, 1])
