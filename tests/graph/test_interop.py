"""NetworkX interop + independent cross-validation of our algorithms."""

import networkx as nx
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_digraph
from repro.graph.interop import from_networkx, to_networkx
from repro.graph.levels import compute_levels
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.toposort import is_topological_order
from repro.graph.transitive import transitive_closure_bitsets


class TestConversion:
    def test_round_trip(self, paper_dag):
        back, mapping = from_networkx(to_networkx(paper_dag))
        assert mapping == {v: v for v in range(8)}
        assert sorted(back.edges()) == sorted(paper_dag.edges())

    def test_arbitrary_node_labels(self):
        g = nx.DiGraph()
        g.add_edge("core", "utils")
        g.add_edge("utils", "parser")
        graph, id_of = from_networkx(g)
        assert graph.num_vertices == 3
        assert graph.has_edge(id_of["core"], id_of["utils"])

    def test_isolated_nodes_preserved(self):
        g = nx.DiGraph()
        g.add_nodes_from(["x", "y"])
        graph, _ = from_networkx(g)
        assert graph.num_vertices == 2
        assert graph.num_edges == 0

    def test_multigraph_rejected(self):
        with pytest.raises(TypeError, match="multigraph"):
            from_networkx(nx.MultiDiGraph())

    def test_name_carried(self):
        g = nx.DiGraph(name="dep-graph")
        graph, _ = from_networkx(g)
        assert graph.name == "dep-graph"


class TestIndependentValidation:
    """Our algorithms vs NetworkX's on the same graphs."""

    def test_scc_matches_networkx(self):
        g = random_digraph(120, 360, seed=1)
        ours = {
            frozenset(c) for c in strongly_connected_components(g)
        }
        theirs = {
            frozenset(c)
            for c in nx.strongly_connected_components(to_networkx(g))
        }
        assert ours == theirs

    def test_condensation_matches_networkx(self):
        g = random_digraph(80, 240, seed=2)
        ours = condense(g)
        theirs = nx.condensation(to_networkx(g))
        assert ours.num_components == theirs.number_of_nodes()
        assert ours.dag.num_edges == theirs.number_of_edges()

    def test_transitive_closure_matches_networkx(self):
        g = random_dag(60, avg_degree=2.0, seed=3)
        closure = transitive_closure_bitsets(g)
        nx_closure = nx.transitive_closure_dag(to_networkx(g))
        for u in range(60):
            for v in range(60):
                if u == v:
                    continue
                assert bool((closure[u] >> v) & 1) == nx_closure.has_edge(
                    u, v
                )

    def test_toposort_validates_against_networkx_check(self):
        g = random_dag(100, avg_degree=2.0, seed=4)
        from repro.graph.toposort import kahn_order

        order = kahn_order(g)
        assert is_topological_order(g, order)
        # NetworkX agrees the graph is a DAG and our order is one of its
        # valid linearisations (position check over nx edges).
        position = {v: i for i, v in enumerate(order)}
        for u, v in to_networkx(g).edges():
            assert position[u] < position[v]

    def test_levels_match_networkx_longest_path(self):
        g = random_dag(70, avg_degree=2.0, seed=5)
        levels = compute_levels(g)
        nx_graph = to_networkx(g)
        for v in range(70):
            ancestors = nx.ancestors(nx_graph, v)
            if not ancestors:
                assert levels[v] == 0
        # Longest path length in the whole DAG equals the max level.
        assert max(levels) == nx.dag_longest_path_length(nx_graph)

    def test_every_index_agrees_with_networkx_reachability(self):
        from repro.baselines.base import create_index

        g = random_dag(50, avg_degree=2.5, seed=6)
        nx_graph = to_networkx(g)
        descendants = {
            u: nx.descendants(nx_graph, u) | {u} for u in range(50)
        }
        for method in ("feline", "feline-b", "grail", "interval",
                       "dual-labeling", "chain-cover"):
            index = create_index(method, g).build()
            for u in range(50):
                for v in range(50):
                    assert index.query(u, v) == (v in descendants[u]), method
