"""Unit tests for induced-subgraph extraction."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.subgraph import induced_subgraph
from repro.graph.traversal import dfs_reachable


class TestInducedSubgraph:
    def test_empty_selection(self, paper_dag):
        mapping = induced_subgraph(paper_dag, [])
        assert mapping.graph.num_vertices == 0
        assert mapping.graph.num_edges == 0

    def test_full_selection_is_isomorphic(self, paper_dag):
        mapping = induced_subgraph(paper_dag, range(8))
        assert mapping.graph.num_edges == paper_dag.num_edges
        assert sorted(mapping.graph.edges()) == sorted(paper_dag.edges())

    def test_ids_follow_selection_order(self, paper_dag):
        mapping = induced_subgraph(paper_dag, [7, 0, 4])
        assert mapping.to_local(7) == 0
        assert mapping.to_local(0) == 1
        assert mapping.to_original(2) == 4
        assert mapping.to_local(3) == -1

    def test_only_internal_edges_kept(self, paper_dag):
        # Select a -> c -> e chain members: edges among them survive.
        mapping = induced_subgraph(paper_dag, [0, 2, 4])
        assert sorted(mapping.graph.edges()) == [(0, 1), (1, 2)]

    def test_duplicate_selection_rejected(self, paper_dag):
        with pytest.raises(GraphError, match="twice"):
            induced_subgraph(paper_dag, [1, 1])

    def test_out_of_range_rejected(self, paper_dag):
        with pytest.raises(GraphError, match="out of range"):
            induced_subgraph(paper_dag, [99])

    def test_name_default(self):
        g = DiGraph(3, [(0, 1)], name="base")
        assert induced_subgraph(g, [0, 1]).graph.name == "base-sub"

    def test_reachability_preserved_on_closed_subsets(self):
        """If the selection is closed under intermediate vertices of its
        members' paths, reachability among members is preserved."""
        g = random_dag(60, avg_degree=2.0, seed=1)
        # Take a downward-closed set: everything reachable from vertex 0.
        from repro.graph.traversal import descendants

        selected = sorted(descendants(g, 0))
        mapping = induced_subgraph(g, selected)
        for u in selected:
            for v in selected:
                assert dfs_reachable(g, u, v) == dfs_reachable(
                    mapping.graph, mapping.to_local(u), mapping.to_local(v)
                )
