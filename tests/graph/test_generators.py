"""Unit tests for the graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    citation_dag,
    complete_dag,
    crown_graph,
    diamond_graph,
    layered_dag,
    ontology_dag,
    path_graph,
    random_dag,
    random_digraph,
    tree_like_dag,
)
from repro.graph.scc import is_dag


class TestRandomDag:
    def test_is_dag(self):
        assert is_dag(random_dag(200, avg_degree=3.0, seed=1))

    def test_edge_count_from_avg_degree(self):
        g = random_dag(500, avg_degree=2.0, seed=2)
        assert g.num_edges == 1000

    def test_explicit_edge_count(self):
        g = random_dag(100, num_edges=321, seed=3)
        assert g.num_edges == 321

    def test_deterministic_given_seed(self):
        a = random_dag(100, avg_degree=2.0, seed=7)
        b = random_dag(100, avg_degree=2.0, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = random_dag(100, avg_degree=2.0, seed=7)
        b = random_dag(100, avg_degree=2.0, seed=8)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            random_dag(4, num_edges=100)

    def test_no_duplicate_edges(self):
        g = random_dag(50, avg_degree=4.0, seed=9)
        edges = list(g.edges())
        assert len(edges) == len(set(edges))


class TestShapeFamilies:
    def test_tree_like_edge_count(self):
        g = tree_like_dag(300, seed=1)
        assert g.num_edges == 299  # single tree: |E| = |V| - 1
        assert is_dag(g)

    def test_tree_like_extra_edges(self):
        g = tree_like_dag(200, extra_edge_fraction=0.5, seed=2)
        assert g.num_edges == 199 + 100

    def test_citation_is_dag_and_dense(self):
        g = citation_dag(300, avg_out_degree=5.0, seed=3)
        assert is_dag(g)
        assert g.num_edges > g.num_vertices  # denser than a tree

    def test_ontology_root_count(self):
        g = ontology_dag(200, num_roots=10, seed=4)
        assert is_dag(g)
        assert len(g.roots()) == 10

    def test_ontology_many_leaves(self):
        g = ontology_dag(300, num_roots=3, seed=5)
        assert len(g.leaves()) > len(g.roots())

    def test_layered_depth(self):
        from repro.graph.levels import compute_levels

        g = layered_dag(6, 4, edge_probability=1.0, seed=6)
        assert max(compute_levels(g)) == 5


class TestFixedShapes:
    def test_crown_structure(self):
        g = crown_graph(3)
        assert g.num_vertices == 6
        assert g.num_edges == 6  # k(k-1) for k = 3
        # a_i never points at its own partner b_i.
        for i in range(3):
            assert not g.has_edge(i, 3 + i)

    def test_crown_invalid_k(self):
        with pytest.raises(GraphError):
            crown_graph(0)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.roots() == [0]
        assert g.leaves() == [4]

    def test_diamond(self):
        g = diamond_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_complete_dag(self):
        g = complete_dag(6)
        assert g.num_edges == 15
        assert is_dag(g)


class TestRandomDigraph:
    def test_cyclic_allowed(self):
        g = random_digraph(50, 200, seed=1)
        assert g.num_edges == 200

    def test_no_self_loops(self):
        g = random_digraph(30, 100, seed=2)
        assert all(u != v for u, v in g.edges())

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            random_digraph(3, 100)


class TestCitationKnobs:
    def test_leaf_fraction_realised(self):
        from repro.graph.generators import citation_dag

        g = citation_dag(2000, leaf_fraction=0.5, seed=1)
        leaf_share = len(g.leaves()) / g.num_vertices
        assert 0.4 < leaf_share < 0.6

    def test_zero_leaf_fraction_single_leaf(self):
        from repro.graph.generators import citation_dag

        g = citation_dag(500, leaf_fraction=0.0, seed=2)
        assert len(g.leaves()) == 1  # only vertex 0 cites nothing

    def test_triadic_probability_raises_clustering(self):
        from repro.graph.generators import citation_dag
        from repro.graph.properties import clustering_coefficient

        flat = citation_dag(800, triadic_probability=0.0, seed=3)
        closed = citation_dag(800, triadic_probability=0.8, seed=3)
        assert clustering_coefficient(closed) > clustering_coefficient(flat)

    def test_uniform_citations_spread_in_degree(self):
        from repro.graph.generators import citation_dag

        concentrated = citation_dag(
            1000, preferential_probability=1.0, seed=4
        )
        spread = citation_dag(1000, preferential_probability=0.0, seed=4)
        # Fewer never-cited papers when citations are uniform.
        assert len(spread.roots()) < len(concentrated.roots())


class TestFanInDag:
    def test_root_fraction_realised(self):
        from repro.graph.generators import fan_in_dag

        g = fan_in_dag(2000, root_fraction=0.8, seed=1)
        assert is_dag(g)
        root_share = len(g.roots()) / g.num_vertices
        assert 0.7 < root_share < 0.9

    def test_core_receives_all_fringe_edges(self):
        from repro.graph.generators import fan_in_dag

        g = fan_in_dag(500, root_fraction=0.9, seed=2)
        core_size = round(0.1 * 500)
        for u, v in g.edges():
            if u >= core_size:
                assert v < core_size  # fringe only points into the core


class TestHubBias:
    def test_hub_bias_concentrates_leaves(self):
        g_flat = tree_like_dag(3000, hub_bias=0.0, seed=1)
        g_hub = tree_like_dag(3000, hub_bias=0.9, seed=1)
        assert len(g_hub.leaves()) > len(g_flat.leaves())
        # Leaf fraction converges to the bias.
        assert len(g_hub.leaves()) / 3000 > 0.8

    def test_hub_bias_still_single_tree(self):
        g = tree_like_dag(1000, hub_bias=0.7, seed=2)
        assert g.num_edges == 999
        assert is_dag(g)
