"""Unit tests for the top-level Reachability facade."""

import pytest

import repro
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.traversal import dfs_reachable


class TestFacade:
    def test_edge_list_input(self):
        r = repro.Reachability([(0, 1), (1, 2)])
        assert r.reachable(0, 2)
        assert not r.reachable(2, 0)

    def test_digraph_input(self, paper_dag):
        r = repro.Reachability(paper_dag)
        assert r.reachable(0, 7)
        assert not r.reachable(0, 6)

    def test_cycles_condensed(self):
        r = repro.Reachability([(0, 1), (1, 0), (1, 2)])
        assert r.reachable(0, 1) and r.reachable(1, 0)
        assert r.reachable(0, 2)
        assert not r.reachable(2, 0)

    def test_same_scc_always_reachable(self):
        g = random_digraph(60, 180, seed=1)
        r = repro.Reachability(g)
        for u in range(60):
            for v in range(60):
                assert r.reachable(u, v) == dfs_reachable(g, u, v)

    @pytest.mark.parametrize("method", ["grail", "tc", "bibfs", "scarab"])
    def test_method_selection(self, method):
        r = repro.Reachability([(0, 1), (1, 2)], method=method)
        assert r.index.method_name == method
        assert r.reachable(0, 2)

    def test_params_forwarded(self):
        r = repro.Reachability([(0, 1)], method="grail", num_labelings=2)
        assert r.index.num_labelings == 2

    def test_repr(self):
        r = repro.Reachability([(0, 1), (1, 0)])
        text = repr(r)
        assert "feline" in text and "sccs=1" in text

    def test_version_exposed(self):
        assert repro.__version__ == "1.1.0"

    def test_isolated_vertices(self):
        r = repro.Reachability(DiGraph(5, []))
        assert r.reachable(3, 3)
        assert not r.reachable(0, 1)


class TestReachableMany:
    def test_matches_scalar_on_cyclic_graph(self):
        g = random_digraph(40, 120, seed=2)
        r = repro.Reachability(g)
        pairs = [(u, v) for u in range(40) for v in range(40)]
        assert r.reachable_many(pairs) == [r.reachable(u, v) for u, v in pairs]

    def test_same_scc_pairs_answered_positively(self):
        r = repro.Reachability([(0, 1), (1, 0), (1, 2)])
        assert r.reachable_many([(0, 1), (1, 0), (2, 0)]) == [True, True, False]

    @pytest.mark.parametrize("method", ["feline", "feline-b", "grail", "bibfs"])
    def test_every_method(self, method):
        r = repro.Reachability([(0, 1), (1, 2), (3, 2)], method=method)
        assert r.reachable_many([(0, 2), (2, 0), (3, 3)]) == [True, False, True]

    def test_accepts_iterables_and_empty(self):
        r = repro.Reachability([(0, 1)])
        assert r.reachable_many(iter([(0, 1)])) == [True]
        assert r.reachable_many([]) == []

    def test_returns_plain_list(self):
        r = repro.Reachability([(0, 1), (1, 2)])
        answers = r.reachable_many([(0, 2)])
        assert isinstance(answers, list) and answers == [True]


class TestStatsProperty:
    def test_stats_exposes_underlying_counters(self):
        r = repro.Reachability([(0, 1), (1, 2)])
        assert r.stats is r.index.stats
        r.reachable(0, 2)
        r.reachable_many([(0, 1), (2, 0)])
        assert r.stats.queries == 3

    def test_stats_invariant_after_mixed_workload(self):
        g = random_digraph(30, 90, seed=5)
        r = repro.Reachability(g)
        r.reachable_many([(u, v) for u in range(30) for v in range(30)])
        for u in range(10):
            r.reachable(u, 29 - u)
        s = r.stats
        assert s.queries == (
            s.equal_cuts + s.negative_cuts + s.positive_cuts + s.searches
        )
