"""T3 — Table 3: construction + query times on real-graph stand-ins.

The headline comparison of the paper: {GRAIL, INTERVAL, FERRARI,
TF-Label, FELINE} on the real datasets.  The full table is regenerated on
all five small stand-ins plus a scaled large one; micro-benchmarks time
each method's build and query batch on one shared graph so
pytest-benchmark's own table mirrors the paper's rows.

Expected shapes (paper §4.3.1–2): FELINE has the best construction time on
every dataset; on queries FELINE beats GRAIL and FERRARI while the
self-sufficient indexes (INTERVAL, TF-Label) are the fastest responders.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import DEFAULT_METHODS, table3_real
from repro.datasets.queries import random_pairs
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

NAMES = ["arxiv", "yago", "go", "pubmed", "citeseer", "uniprot22m"]
METHOD_PARAMS = {spec.display: (spec.method, spec.params) for spec in DEFAULT_METHODS}


@pytest.fixture(scope="module")
def report():
    result = table3_real(
        names=NAMES, scale=scaled(0.2), num_queries=2000, runs=2
    )
    save_report(result)
    return result


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("citeseer", scale=scaled(0.2))


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph, 2000, seed=0)


@pytest.mark.parametrize("label", list(METHOD_PARAMS))
def test_construction(benchmark, report, graph, label):
    method, params = METHOD_PARAMS[label]
    benchmark(lambda: create_index(method, graph, **params).build())


@pytest.mark.parametrize("label", list(METHOD_PARAMS))
def test_query_batch(benchmark, report, graph, pairs, label):
    method, params = METHOD_PARAMS[label]
    index = create_index(method, graph, **params).build()
    answers = benchmark(index.query_many, pairs)
    assert len(answers) == len(pairs)


def test_shape_feline_best_construction(report):
    """Paper claim: FELINE achieves the best construction times."""
    results = report.data["results"]
    by_key = {(r.dataset, r.method): r for r in results}
    for name in NAMES:
        feline = by_key[(name, "FELINE")].construction_ms
        others = [
            by_key[(name, m)].construction_ms
            for m in ("GRAIL", "FERRARI", "TF-Label")
        ]
        assert all(feline < o for o in others if o is not None), name
