"""Gate CI on batch-throughput regressions against a committed baseline.

Compares a fresh ``BENCH_pr5.json`` (written by ``smoke.py``) to the
baseline committed at ``benchmarks/BENCH_pr5.json``.  Raw timings are
not comparable across machines — a CI runner is not the laptop that
committed the baseline — so each file's pure-Python *calibration* loop
timing rescales its throughputs first:

    normalized_throughput = (queries / query_ms) * calibration_ms

i.e. "batch queries answered per unit of this machine's own Python
speed".  A (workload, method, workers) cell regresses when its fresh
normalized throughput drops more than ``--tolerance`` (default 20%)
below the baseline's.  Cells present in only one file are reported and
skipped, so a partial sweep (CI's per-workers matrix legs) checks just
its slice.

    PYTHONPATH=src python benchmarks/check_regression.py FRESH [BASELINE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_pr5.json"


def _cells(report: dict) -> dict[tuple[str, str, int], float]:
    """(workload, method, workers) -> normalized batch throughput."""
    calibration = report["calibration_ms"]
    cells: dict[tuple[str, str, int], float] = {}
    for workload in report["workloads"]:
        queries = workload["queries"]
        for r in workload["results"]:
            if not queries or not r.get("query_ms"):
                continue
            key = (workload["workload"], r["method"], r["workers"])
            cells[key] = (queries / r["query_ms"]) * calibration
    return cells


def check(fresh: dict, baseline: dict, tolerance: float) -> int:
    fresh_cells = _cells(fresh)
    base_cells = _cells(baseline)
    regressions = []
    print(
        f"baseline calibration {baseline['calibration_ms']:.1f} ms "
        f"({baseline.get('cpus', '?')} cpus), fresh "
        f"{fresh['calibration_ms']:.1f} ms ({fresh.get('cpus', '?')} cpus); "
        f"tolerance {tolerance:.0%}"
    )
    # Like-for-like context: a pre-kernel baseline (no kernel_backend
    # field) ran the pure-Python loops, so a fresh run on a stronger
    # backend can only look better — the gate stays sound either way.
    base_kernel = baseline.get("kernel_backend", "python (pre-PR10 baseline)")
    fresh_kernel = fresh.get("kernel_backend", "python (pre-PR10 run)")
    note = "" if base_kernel == fresh_kernel else "  [backends differ]"
    print(
        f"kernel backend: baseline {base_kernel}, fresh {fresh_kernel}{note}"
    )
    for key in sorted(base_cells):
        workload, method, workers = key
        label = f"{workload:>14} {method:<10} workers={workers}"
        if key not in fresh_cells:
            print(f"  {label}  SKIP (not in fresh run)")
            continue
        base = base_cells[key]
        new = fresh_cells[key]
        ratio = new / base
        verdict = "ok"
        if ratio < 1 - tolerance:
            verdict = "REGRESSION"
            regressions.append((key, ratio))
        print(f"  {label}  {ratio:6.2f}x of baseline  {verdict}")
    for key in sorted(set(fresh_cells) - set(base_cells)):
        workload, method, workers = key
        print(
            f"  {workload:>14} {method:<10} workers={workers}  "
            "SKIP (not in baseline)"
        )
    if regressions:
        print(f"\nFAIL: {len(regressions)} cell(s) regressed >"
              f" {tolerance:.0%}")
        return 1
    print("\nOK: no batch-throughput regression")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="BENCH_pr5.json of this run")
    parser.add_argument(
        "baseline", nargs="?", type=Path, default=DEFAULT_BASELINE
    )
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv[1:])
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(fresh, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
