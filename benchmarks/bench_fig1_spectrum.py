"""F1 — Figure 1: the reachability trade-off spectrum.

The paper opens with the spectrum (borrowed from the GRAIL paper):
materialised transitive closure on one end (O(1) queries, quadratic
space), pure online search on the other (zero index, O(|V|+|E|)
queries), and the interesting methods in between.  This bench plots that
spectrum with our implementations: index size and query time for every
point along it, plus the FELINE batch-query fast path.
"""

import time

import pytest

from repro.baselines.base import create_index
from repro.bench.reporting import format_bytes, format_table
from repro.bench.runner import ExperimentReport
from repro.core.query import FelineIndex
from repro.datasets.queries import random_pairs
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

SPECTRUM = [
    ("tc", {}, "full closure (left end)"),
    ("chain-cover", {}, "TC compression"),
    ("interval", {}, "TC compression"),
    # Dual-Labeling is a sparse-graph method (index O(n + t^2) in the
    # non-tree edge count t); on a dense citation graph it exceeds any
    # sane link budget — the FAIL row is the method's documented wall.
    ("dual-labeling", {"link_budget": 2000}, "TC compression (sparse)"),
    ("tf-label", {}, "hop labeling"),
    ("grail", {}, "refined online search"),
    ("ferrari", {}, "refined online search"),
    ("feline", {}, "refined online search"),
    ("bibfs", {}, "no index (right end)"),
]


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("citeseer", scale=scaled(0.25))


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph, 3000, seed=0)


@pytest.fixture(scope="module")
def report(graph, pairs):
    rows = []
    data = {}
    from repro.exceptions import IndexBuildError

    for method, params, family in SPECTRUM:
        index = create_index(method, graph, **params)
        start = time.perf_counter()
        try:
            index.build()
        except IndexBuildError:
            rows.append([method, family, None, None, "FAIL"])
            continue
        build_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        index.query_many(pairs)
        query_ms = 1000 * (time.perf_counter() - start)
        rows.append([
            method, family, round(build_ms, 2), round(query_ms, 2),
            format_bytes(index.index_size_bytes()),
        ])
        data[method] = {
            "build_ms": build_ms,
            "query_ms": query_ms,
            "bytes": index.index_size_bytes(),
        }
    result = ExperimentReport(
        experiment_id="F1",
        title="The reachability spectrum (paper Figure 1) on citeseer",
        text=format_table(
            ["method", "family", "build (ms)", "3k queries (ms)", "index"],
            rows,
        ),
        data=data,
    )
    save_report(result)
    return result


def test_spectrum_sweep(benchmark, report, graph, pairs):
    index = FelineIndex(graph).build()
    benchmark(index.query_many, pairs)


def test_shape_endpoints(report):
    """The spectrum's defining trade-off: the closure end has the largest
    index and near-free queries; the searchless end has zero index and
    the slowest queries."""
    data = report.data
    assert data["bibfs"]["bytes"] == 0
    assert data["tc"]["bytes"] >= max(
        d["bytes"] for m, d in data.items() if m != "tc"
    ) or data["tc"]["query_ms"] <= min(
        d["query_ms"] for m, d in data.items() if m != "tc"
    )
    assert data["bibfs"]["query_ms"] == max(
        d["query_ms"] for d in data.values()
    )


def test_shape_feline_smallest_real_index(report):
    """Among the methods that build something, FELINE's index is the
    smallest (two integers per vertex plus the two filters)."""
    data = report.data
    indexed = {m: d for m, d in data.items() if d["bytes"] > 0}
    assert min(indexed, key=lambda m: indexed[m]["bytes"]) == "feline"


def test_shape_dual_labeling_wins_on_sparse(report):
    """Dual-Labeling's home turf: a fan-out near-tree, where the
    spanning forest absorbs almost every edge and t stays tiny — the
    sparse/dense contrast with its FAIL row above.  (Fan-*in* graphs
    like the reversed Uniprot trees are adversarial instead: an
    out-rooted spanning forest can cover only one parent per vertex.)"""
    from repro.graph.generators import tree_like_dag

    graph = tree_like_dag(8000, extra_edge_fraction=0.01, seed=3)
    dual = create_index("dual-labeling", graph).build()
    feline = create_index("feline", graph).build()
    assert dual.num_links < graph.num_vertices * 0.02
    assert dual.index_size_bytes() < 2 * feline.index_size_bytes()


def test_batch_queries_not_slower(graph, pairs):
    index = FelineIndex(graph).build()
    start = time.perf_counter()
    scalar = [index.query(u, v) for u, v in pairs]
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    batch = index.query_many(pairs)
    batch_s = time.perf_counter() - start
    assert batch == scalar
    assert batch_s < scalar_s * 1.5  # typically several times faster