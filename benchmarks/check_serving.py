"""Gate CI on the serving tier's loadgen report.

Takes the JSON written by ``repro loadgen --compare --out`` (the same
shape as the committed ``benchmarks/BENCH_pr6.json``) and enforces:

* the run is healthy — no client errors, every measured request got a
  ``200``;
* coalescing pays — the coalesced leg's throughput is at least
  ``--min-speedup`` (default 1.05x) of the uncoalesced baseline leg,
  and its batch-size histogram shows real merging (mean batch > 1);
* an absolute floor — normalized throughput, rescaled by the file's own
  pure-Python calibration timing exactly like ``check_regression.py``
  (``rps * calibration_ms``: requests per unit of this machine's Python
  speed), stays above ``--floor`` against the committed baseline file's
  coalesced leg, within ``--tolerance`` (default 35%; serving numbers
  are noisier than in-process batch timings).

    PYTHONPATH=src python benchmarks/check_serving.py FRESH [BASELINE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_pr6.json"


def _run(report: dict, label: str) -> dict | None:
    for run in report.get("runs", []):
        if run.get("label") == label:
            return run
    return None


def _normalized_rps(report: dict, run: dict) -> float:
    return run["throughput_rps"] * report["calibration_ms"]


def check(fresh: dict, baseline: dict, min_speedup: float,
          tolerance: float) -> int:
    failures = []
    print(
        f"baseline calibration {baseline['calibration_ms']:.1f} ms "
        f"({baseline.get('cpus', '?')} cpus), fresh "
        f"{fresh['calibration_ms']:.1f} ms ({fresh.get('cpus', '?')} cpus)"
    )

    for label in ("baseline", "coalesced"):
        run = _run(fresh, label)
        if run is None:
            failures.append(f"fresh report has no {label!r} run")
            continue
        ok = run["errors"] == 0 and set(run["status"]) == {"200"}
        print(
            f"  {label:<10} {run['requests']:>7} req  "
            f"{run['throughput_rps']:>9.1f} rps  errors={run['errors']}  "
            f"{'ok' if ok else 'UNHEALTHY'}"
        )
        if not ok:
            failures.append(
                f"{label} run unhealthy: errors={run['errors']}, "
                f"status={run['status']}"
            )

    base_run, coal_run = _run(fresh, "baseline"), _run(fresh, "coalesced")
    if base_run and coal_run:
        speedup = (
            coal_run["throughput_rps"] / base_run["throughput_rps"]
            if base_run["throughput_rps"]
            else 0.0
        )
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"  coalesced/baseline speedup {speedup:.2f}x "
              f"(need >= {min_speedup:.2f}x)  {verdict}")
        if speedup < min_speedup:
            failures.append(
                f"coalescing speedup {speedup:.2f}x below {min_speedup:.2f}x"
            )
        batch = (coal_run.get("server") or {}).get("coalesce_batch_size")
        if not batch or batch["mean"] <= 1.0:
            failures.append(
                "coalesced run shows no merging "
                f"(batch-size histogram: {batch})"
            )
        else:
            print(f"  mean coalesced batch size {batch['mean']:.1f}  ok")
        wait = (coal_run.get("server") or {}).get("queue_wait_seconds")
        if not wait:
            failures.append("queue-wait histogram missing from /metrics")

        committed = _run(baseline, "coalesced")
        if committed is not None:
            base_norm = _normalized_rps(baseline, committed)
            fresh_norm = _normalized_rps(fresh, coal_run)
            ratio = fresh_norm / base_norm if base_norm else 0.0
            verdict = "ok" if ratio >= 1 - tolerance else "REGRESSION"
            print(
                f"  normalized coalesced throughput {ratio:6.2f}x of "
                f"committed baseline  {verdict}"
            )
            if ratio < 1 - tolerance:
                failures.append(
                    f"normalized throughput {ratio:.2f}x below "
                    f"{1 - tolerance:.2f}x of the committed baseline"
                )

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: serving floor holds")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="loadgen --out JSON")
    parser.add_argument(
        "baseline", nargs="?", type=Path, default=DEFAULT_BASELINE
    )
    parser.add_argument("--min-speedup", type=float, default=1.05)
    parser.add_argument("--tolerance", type=float, default=0.35)
    args = parser.parse_args(argv[1:])
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(fresh, baseline, args.min_speedup, args.tolerance)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
