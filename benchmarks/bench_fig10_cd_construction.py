"""F10 — Figure 10: critical-difference diagram, construction times.

Runs the Table 3 sweep, ranks methods per dataset, applies the Friedman
test at the paper's confidence level (0.1) and renders the Nemenyi CD
diagram.  The benchmark times the statistical pipeline itself.

Expected shape: FELINE holds the best average rank (1.0 in the paper).
"""

import pytest

from repro.bench.runner import fig10_cd_construction
from repro.stats.friedman import friedman_test
from repro.stats.nemenyi import compute_cd_diagram

from conftest import save_report, scaled

NAMES = ["arxiv", "yago", "go", "pubmed", "citeseer", "uniprot22m"]


@pytest.fixture(scope="module")
def report():
    result = fig10_cd_construction(
        names=NAMES, scale=scaled(0.3), num_queries=1000, runs=2
    )
    save_report(result)
    return result


def test_cd_pipeline(benchmark, report):
    # Re-derive the CD diagram from the measured ranks: the statistical
    # pipeline is what this figure's machinery adds over Table 3.
    friedman = report.data["friedman"]
    table = [
        [rank + i * 0.01 for i, rank in enumerate(friedman.average_ranks)]
        for _ in range(len(NAMES))
    ]

    def pipeline():
        result = friedman_test(table)
        return compute_cd_diagram(
            [str(i) for i in range(result.num_methods)],
            result.average_ranks,
            result.num_blocks,
        )

    diagram = benchmark(pipeline)
    assert diagram.cd > 0


def test_shape_feline_best_rank(report):
    friedman = report.data["friedman"]
    diagram = report.data["diagram"]
    best_method, _ = diagram.ordered_methods()[0]
    assert best_method == "FELINE"
    assert friedman.significant(alpha=0.1)
