"""A1 — Ablation: the Y-ordering heuristic (DESIGN.md experiment A1).

Quantifies the design choice at the heart of Algorithm 1: the ``max-x``
Kornaropoulos root selection versus three controls.  The benchmark times a
query batch under each heuristic; the regenerated table plus a
false-positive count back the claim that ``max-x`` minimises falsely
implied paths locally.
"""

import pytest

from repro.bench.runner import ablation_y_heuristics
from repro.core.analysis import count_false_positives
from repro.core.index import build_feline_index
from repro.core.query import FelineIndex
from repro.datasets.queries import random_pairs
from repro.datasets.real_stand_ins import load_real_stand_in
from repro.graph.generators import random_dag

from conftest import save_report, scaled

HEURISTICS = ["max-x", "min-x", "fifo", "random"]


@pytest.fixture(scope="module")
def report():
    result = ablation_y_heuristics(scale=scaled(0.2), num_queries=2000, runs=2)
    save_report(result)
    return result


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("go", scale=scaled(0.2))


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph, 2000, seed=0)


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_query_batch(benchmark, report, graph, pairs, heuristic):
    index = FelineIndex(graph, y_heuristic=heuristic, seed=0).build()
    benchmark(index.query_many, pairs)


def test_shape_max_x_minimises_false_positives(report):
    """Aggregated over random DAGs, the paper's heuristic yields no more
    falsely implied paths than any control."""
    totals = {h: 0 for h in HEURISTICS}
    for seed in range(4):
        g = random_dag(120, avg_degree=1.5, seed=seed)
        for heuristic in HEURISTICS:
            coords = build_feline_index(
                g,
                y_heuristic=heuristic,
                with_level_filter=False,
                with_positive_cut=False,
                seed=seed,
            )
            totals[heuristic] += count_false_positives(g, coords)
    assert totals["max-x"] == min(totals.values())
