"""A2 — Ablation: query-type mix (the paper's §3.3.1/§4.5 discussion).

The paper attributes all performance differences between online-search
methods to the queries that are *not* answered by the constant-time cuts
— positive queries and false positives.  This ablation sweeps the
positive fraction of the workload and measures, for FELINE, FELINE-B and
GRAIL, the time and the expanded-vertex counts, making the paper's
"differences really come from the search" claim directly visible.
"""

import time

import pytest

from repro.baselines.base import create_index
from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentReport
from repro.datasets.queries import mixed_workload
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
METHODS = ["feline", "feline-b", "grail"]


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("arxiv", scale=scaled(0.25))


@pytest.fixture(scope="module")
def report(graph):
    rows = []
    data = {}
    for fraction in FRACTIONS:
        workload = mixed_workload(
            graph, 2000, positive_fraction=fraction, seed=1
        )
        row: list[object] = [f"{fraction:.0%}"]
        for method in METHODS:
            index = create_index(method, graph).build()
            start = time.perf_counter()
            index.query_many(workload.pairs)
            elapsed_ms = 1000 * (time.perf_counter() - start)
            row.extend([
                round(elapsed_ms, 2), index.stats.expanded,
            ])
            data[(fraction, method)] = {
                "ms": elapsed_ms,
                "expanded": index.stats.expanded,
                "searches": index.stats.searches,
            }
        rows.append(row)
    headers = ["positive %"]
    for method in METHODS:
        headers.extend([f"{method} ms", f"{method} expanded"])
    result = ExperimentReport(
        experiment_id="A2-query-mix",
        title="Ablation: workload positive fraction",
        text=format_table(headers, rows),
        data=data,
    )
    save_report(result)
    return result


@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
def test_query_batch(benchmark, report, graph, fraction):
    workload = mixed_workload(graph, 2000, positive_fraction=fraction, seed=1)
    index = create_index("feline", graph).build()
    benchmark(index.query_many, workload.pairs)


def test_shape_positive_queries_cost_more(report):
    """All-negative workloads are cut in O(1); all-positive ones search.

    Expanded-vertex counts must grow with the positive fraction for
    every online-search method."""
    for method in ["feline", "feline-b", "grail"]:
        negative_heavy = report.data[(0.0, method)]["expanded"]
        positive_heavy = report.data[(1.0, method)]["expanded"]
        assert positive_heavy >= negative_heavy, method


def test_shape_feline_b_expands_least_on_positive_workloads(report):
    feline_b = report.data[(1.0, "feline-b")]["expanded"]
    feline = report.data[(1.0, "feline")]["expanded"]
    assert feline_b <= feline