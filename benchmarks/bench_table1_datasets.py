"""T1 — Table 1: dataset statistics (paper values vs stand-ins).

Regenerates every column of Table 1 on the stand-in graphs and benchmarks
the statistics computation itself (clustering coefficient + effective
diameter + degree sweep) on one mid-size stand-in.
"""

import pytest

from repro.bench.runner import table1_datasets
from repro.datasets.real_stand_ins import load_real_stand_in
from repro.graph.properties import graph_summary

from conftest import save_report, scaled


@pytest.fixture(scope="module")
def report():
    result = table1_datasets(scale=scaled(0.2), diameter_sample_size=16)
    save_report(result)
    return result


def test_table1_statistics_computation(benchmark, report):
    graph = load_real_stand_in("citeseer", scale=scaled(0.2))
    summary = benchmark(
        graph_summary, graph, diameter_sample_size=16
    )
    assert summary.num_vertices == graph.num_vertices
    # Shape check against the paper: citation stand-ins are clustered.
    assert summary.clustering > 0.0
