"""F14 — Figure 14: query times over the synthetic suite.

Sweeps the synthetic datasets (including the dense ``-5``/``-10``
variants) with FELINE-B added, as the paper's figure does, and benchmarks
query batches of FELINE vs FELINE-B on a dense instance — the regime
where the bidirectional pruning pays off.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import fig14_synthetic_query
from repro.datasets.queries import random_pairs
from repro.datasets.synthetic import load_synthetic

from conftest import save_report, scaled


@pytest.fixture(scope="module")
def report():
    result = fig14_synthetic_query(
        scale=scaled(0.0002), num_queries=1000, runs=1
    )
    save_report(result)
    return result


@pytest.fixture(scope="module")
def dense_graph():
    return load_synthetic("50M-10", scale=scaled(0.0002))


@pytest.fixture(scope="module")
def pairs(dense_graph):
    return random_pairs(dense_graph, 1000, seed=0)


@pytest.mark.parametrize("variant", ["feline", "feline-b", "grail"])
def test_query_batch_dense(benchmark, report, dense_graph, pairs, variant):
    index = create_index(variant, dense_graph).build()
    benchmark(index.query_many, pairs)


def test_shape_feline_b_prunes_harder_than_feline(dense_graph, pairs):
    feline = create_index("feline", dense_graph).build()
    feline_b = create_index("feline-b", dense_graph).build()
    feline.query_many(pairs)
    feline_b.query_many(pairs)
    assert feline_b.stats.expanded <= feline.stats.expanded
