"""T4 — Table 4: FELINE vs FELINE-I vs FELINE-B.

Regenerates the variant comparison on the five small stand-ins and
benchmarks each variant's build and query batch.  Expected shapes (paper
§4.3.3): FELINE-B's construction time is roughly double (two Algorithm 1
runs) and its query times are the best of the three.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import table4_feline_variants
from repro.datasets.queries import random_pairs
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

VARIANTS = ["feline", "feline-i", "feline-b"]


@pytest.fixture(scope="module")
def report():
    result = table4_feline_variants(scale=scaled(0.2), num_queries=2000, runs=2)
    save_report(result)
    return result


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("arxiv", scale=scaled(0.2))


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph, 2000, seed=0)


@pytest.mark.parametrize("variant", VARIANTS)
def test_construction(benchmark, report, graph, variant):
    benchmark(lambda: create_index(variant, graph).build())


@pytest.mark.parametrize("variant", VARIANTS)
def test_query_batch(benchmark, report, graph, pairs, variant):
    index = create_index(variant, graph).build()
    benchmark(index.query_many, pairs)


def test_shape_feline_b_construction_roughly_doubles(report):
    # Aggregated across datasets (per-dataset timings at this scale are
    # noisy): two Algorithm 1 runs must cost more than one overall.
    results = report.data["results"]
    single = sum(
        r.construction_ms for r in results if r.method == "FELINE"
    )
    double = sum(
        r.construction_ms for r in results if r.method == "FELINE-B"
    )
    assert double > single
