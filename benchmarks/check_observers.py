"""Gate CI on the observer layer actually earning its keep.

Reads a fresh ``BENCH_pr8.json`` (written by ``smoke.py``) and enforces
two properties per method, plus an optional cross-run comparison:

* **survivor-rate drop** (within the fresh file) — with observers
  attached, the fraction of the search-heavy batch that still needs an
  online search must fall by at least ``--min-drop`` (relative) below
  the observer-less rate.  A layer that decides nothing is dead weight
  and fails the gate.
* **throughput floor** (within the fresh file) — the observer-on batch
  must answer at least ``--floor`` × the observer-off throughput.  The
  pre-pass is vectorized; if it ever costs more than the searches it
  kills, that is a bug, not a tuning choice.
* **baseline comparison** (optional) — against a committed
  ``BENCH_pr8.json``, observer-on cells must hold their
  calibration-normalized throughput within ``--tolerance``, the same
  cross-machine normalization as ``check_regression.py``:

      normalized_throughput = (queries / query_ms) * calibration_ms

    PYTHONPATH=src python benchmarks/check_observers.py FRESH [BASELINE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_pr8.json"


def _by_method(report: dict) -> dict[str, dict[int, dict]]:
    """method -> observers -> result cell."""
    table: dict[str, dict[int, dict]] = {}
    for cell in report["results"]:
        table.setdefault(cell["method"], {})[cell["observers"]] = cell
    return table


def _normalized(report: dict, cell: dict) -> float:
    queries = report["workload"]["queries"]
    return (queries / cell["query_ms"]) * report["calibration_ms"]


def check(
    fresh: dict,
    baseline: dict | None,
    min_drop: float,
    floor: float,
    tolerance: float,
) -> int:
    failures: list[str] = []
    table = _by_method(fresh)
    print(
        f"fresh calibration {fresh['calibration_ms']:.1f} ms "
        f"({fresh.get('cpus', '?')} cpus); min-drop {min_drop:.0%}, "
        f"floor {floor:.0%}, tolerance {tolerance:.0%}"
    )
    for method, cells in sorted(table.items()):
        if 0 not in cells:
            failures.append(f"{method}: no observers=0 reference cell")
            continue
        off = cells[0]
        for k, cell in sorted(cells.items()):
            if k == 0:
                continue
            label = f"{method:<10} observers={k}"
            drop = 1 - cell["survivor_rate"] / max(
                off["survivor_rate"], 1e-12
            )
            ratio = _normalized(fresh, cell) / _normalized(fresh, off)
            verdict = "ok"
            if drop < min_drop:
                verdict = "FAIL survivor-rate"
                failures.append(
                    f"{label}: survivor rate fell only {drop:.1%} "
                    f"({off['survivor_rate']:.3f} -> "
                    f"{cell['survivor_rate']:.3f}), need {min_drop:.0%}"
                )
            if ratio < floor:
                verdict = "FAIL throughput-floor"
                failures.append(
                    f"{label}: batch throughput {ratio:.2f}x of "
                    f"observer-off, floor {floor:.2f}x"
                )
            print(
                f"  {label}  survivors {off['survivor_rate']:.3f} -> "
                f"{cell['survivor_rate']:.3f} ({drop:+.1%}), throughput "
                f"{ratio:.2f}x of off  {verdict}"
            )

    if baseline is not None:
        base_table = _by_method(baseline)
        for method, cells in sorted(table.items()):
            for k, cell in sorted(cells.items()):
                base_cell = base_table.get(method, {}).get(k)
                label = f"{method:<10} observers={k}"
                if base_cell is None:
                    print(f"  {label}  SKIP (not in baseline)")
                    continue
                ratio = _normalized(fresh, cell) / _normalized(
                    baseline, base_cell
                )
                verdict = "ok"
                if ratio < 1 - tolerance:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{label}: {ratio:.2f}x of baseline normalized "
                        f"throughput (tolerance {tolerance:.0%})"
                    )
                print(f"  {label}  {ratio:6.2f}x of baseline  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} observer gate violation(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: observer layer cuts survivors and holds throughput")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path, help="BENCH_pr8.json of this run"
    )
    parser.add_argument(
        "baseline", nargs="?", type=Path, default=DEFAULT_BASELINE
    )
    parser.add_argument("--min-drop", type=float, default=0.10)
    parser.add_argument("--floor", type=float, default=0.30)
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv[1:])
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    else:
        print(f"note: no baseline at {args.baseline}; within-run gates only")
    return check(
        fresh, baseline, args.min_drop, args.floor, args.tolerance
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
