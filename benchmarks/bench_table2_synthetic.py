"""T2 — Table 2: the synthetic dataset suite.

Regenerates the dataset list with generated sizes and benchmarks the
random-DAG generator (the substrate every synthetic experiment feeds on).
"""

import pytest

from repro.bench.runner import table2_synthetic
from repro.datasets.synthetic import load_synthetic

from conftest import save_report, scaled


@pytest.fixture(scope="module")
def report():
    result = table2_synthetic(scale=scaled(0.001))
    save_report(result)
    return result


def test_table2_generation_speed(benchmark, report):
    graph = benchmark(load_synthetic, "50M-5", scale=scaled(0.0005))
    assert graph.num_edges == 5 * graph.num_vertices
