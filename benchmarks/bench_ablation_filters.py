"""A1 — Ablation: the §3.4 positive-cut and level filters.

Times FELINE query batches with each filter toggled, isolating how much
of the query-time win comes from the optimizations shared with GRAIL and
FERRARI versus FELINE's own two-dimensional pruning.
"""

import pytest

from repro.bench.runner import ablation_filters
from repro.core.query import FelineIndex
from repro.datasets.queries import mixed_workload
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

CONFIGS = {
    "full": {},
    "no-level": {"use_level_filter": False},
    "no-poscut": {"use_positive_cut": False},
    "bare": {"use_level_filter": False, "use_positive_cut": False},
}


@pytest.fixture(scope="module")
def report():
    result = ablation_filters(scale=scaled(0.2), num_queries=2000, runs=2)
    save_report(result)
    return result


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("arxiv", scale=scaled(0.2))


@pytest.fixture(scope="module")
def workload(graph):
    return mixed_workload(graph, 2000, positive_fraction=0.3, seed=0)


@pytest.mark.parametrize("config", list(CONFIGS))
def test_query_batch(benchmark, report, graph, workload, config):
    index = FelineIndex(graph, **CONFIGS[config]).build()
    benchmark(index.query_many, workload.pairs)


def test_shape_positive_cut_short_circuits_searches(graph, workload):
    """With the positive-cut filter on, strictly fewer DFS searches run
    on a positive-heavy workload."""
    full = FelineIndex(graph).build()
    bare = FelineIndex(
        graph, use_level_filter=False, use_positive_cut=False
    ).build()
    full.query_many(workload.pairs)
    bare.query_many(workload.pairs)
    assert full.stats.searches < bare.stats.searches
