"""F15 — Figure 15: index sizes on the real-graph stand-ins.

Regenerates the size comparison (GRAIL at d = 3 and d = 5, FELINE,
FELINE-B, plus the other baselines) and asserts the paper's headline size
relations.  The benchmark times FELINE's size accounting plus build on one
stand-in, the operation the figure is built from.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import fig15_index_sizes_real
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

NAMES = ["arxiv", "yago", "go", "pubmed", "citeseer"]


@pytest.fixture(scope="module")
def report():
    result = fig15_index_sizes_real(
        names=NAMES, scale=scaled(0.25), num_queries=50, runs=1
    )
    save_report(result)
    return result


def test_build_and_measure(benchmark, report):
    graph = load_real_stand_in("yago", scale=scaled(0.25))

    def build_and_size():
        return create_index("feline", graph).build().index_size_bytes()

    assert benchmark(build_and_size) > 0


def test_shape_grail_larger_than_feline(report):
    """Paper: GRAIL's index is ~2x FELINE's at d = 3 and ~4x at d = 5."""
    by_key = {
        (r.dataset, r.method): r for r in report.data["results"]
    }
    for name in NAMES:
        feline = by_key[(name, "FELINE")].index_bytes
        grail3 = by_key[(name, "GRAIL")].index_bytes
        grail5 = by_key[(name, "GRAIL-d5")].index_bytes
        assert grail3 > feline, name
        assert grail5 > grail3, name


def test_shape_feline_b_between_feline_and_double(report):
    by_key = {
        (r.dataset, r.method): r for r in report.data["results"]
    }
    for name in NAMES:
        feline = by_key[(name, "FELINE")].index_bytes
        feline_b = by_key[(name, "FELINE-B")].index_bytes
        assert feline < feline_b < 2 * feline, name
