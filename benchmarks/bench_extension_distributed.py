"""EXT2 — Extension benchmark: distributed FELINE (simulated cluster).

Measures the cost model of the simulated distributed deployment
(DESIGN.md S27): query throughput, messages and rounds as the shard
count grows, and shard load balance — the quantities a real cluster
deployment of FELINE would tune.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentReport
from repro.core.distributed import SimulatedCluster
from repro.datasets.queries import mixed_workload
from repro.graph.generators import random_dag

from conftest import save_report, scaled

N = max(64, round(scaled(4000)))
SHARD_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def graph():
    return random_dag(N, avg_degree=3.0, seed=1)


@pytest.fixture(scope="module")
def workload(graph):
    return mixed_workload(graph, 3000, positive_fraction=0.3, seed=2)


@pytest.fixture(scope="module")
def report(graph, workload):
    rows = []
    data = {}
    for shards in SHARD_COUNTS:
        cluster = SimulatedCluster(graph, num_shards=shards)
        cluster.stats.reset(cluster.num_shards)
        for u, v in workload.pairs:
            cluster.query(u, v)
        stats = cluster.stats
        expansions = stats.expansions_per_shard
        balance = (
            max(expansions) / max(1, min(expansions))
            if min(expansions) > 0
            else float("inf")
        )
        rows.append([
            shards,
            stats.messages,
            stats.rounds,
            stats.forwarded_vertices,
            round(stats.local_only_queries / stats.queries, 3),
            round(balance, 2),
        ])
        data[shards] = {
            "messages": stats.messages,
            "rounds": stats.rounds,
            "local_fraction": stats.local_only_queries / stats.queries,
        }
    result = ExperimentReport(
        experiment_id="EXT-distributed",
        title=f"Simulated distributed FELINE, {N}-vertex DAG, "
              f"{len(workload)} queries",
        text=format_table(
            ["shards", "messages", "rounds", "forwarded",
             "local-only fraction", "expansion imbalance"],
            rows,
        ),
        data=data,
    )
    save_report(result)
    return result


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_query_batch(benchmark, report, graph, workload, shards):
    cluster = SimulatedCluster(graph, num_shards=shards)

    def run():
        return [cluster.query(u, v) for u, v in workload.pairs]

    answers = benchmark(run)
    assert len(answers) == len(workload.pairs)


def test_shape_messages_grow_with_shards(report):
    """More shards = more boundary crossings; one shard = none."""
    assert report.data[1]["messages"] == 0
    assert report.data[8]["messages"] >= report.data[2]["messages"]


def test_shape_answers_independent_of_sharding(graph, workload):
    reference = None
    for shards in (1, 4):
        cluster = SimulatedCluster(graph, num_shards=shards)
        answers = [cluster.query(u, v) for u, v in workload.pairs]
        if reference is None:
            reference = answers
        else:
            assert answers == reference