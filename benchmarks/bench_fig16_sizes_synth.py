"""F16 — Figure 16: index sizes over the synthetic suite.

Same size comparison as Figure 15 on the synthetic ladder; the benchmark
times size accounting across methods on one mid-size synthetic.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import fig16_index_sizes_synthetic
from repro.datasets.synthetic import load_synthetic

from conftest import save_report, scaled


@pytest.fixture(scope="module")
def report():
    result = fig16_index_sizes_synthetic(
        scale=scaled(0.0002), num_queries=50, runs=1
    )
    save_report(result)
    return result


@pytest.mark.parametrize("method", ["feline", "grail", "tf-label"])
def test_size_accounting(benchmark, report, method):
    graph = load_synthetic("50M", scale=scaled(0.0002))
    index = create_index(method, graph).build()
    assert benchmark(index.index_size_bytes) > 0


def test_shape_feline_linear_in_vertices(report):
    """FELINE's index is O(|V|): size per vertex is flat across sizes."""
    by_key = {
        (r.dataset, r.method): r for r in report.data["results"]
    }
    per_vertex = []
    for name in ("10M", "50M", "100M"):
        result = by_key[(name, "FELINE")]
        graph = load_synthetic(name, scale=scaled(0.0002))
        per_vertex.append(result.index_bytes / graph.num_vertices)
    assert max(per_vertex) - min(per_vertex) < 1e-6
