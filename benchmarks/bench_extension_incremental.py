"""EXT — Extension benchmark: incremental FELINE (paper's future work).

The paper's conclusion announces an incremental FELINE; DESIGN.md S11+
implements it over Pearce–Kelly online topological reordering.  This
bench measures what the extension buys: per-edge insertion cost versus
the rebuild-per-batch alternative, and query cost on the evolving index
versus the static index on the same final graph.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentReport
from repro.core.incremental import IncrementalFelineIndex
from repro.core.query import FelineIndex
from repro.datasets.queries import random_pairs
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

from conftest import save_report, scaled

from random import Random
import time


def _edge_stream(n: int, avg_degree: float, seed: int):
    graph = random_dag(n, avg_degree=avg_degree, seed=seed)
    edges = list(graph.edges())
    Random(seed).shuffle(edges)
    return graph, edges


N = max(16, round(scaled(3000)))


@pytest.fixture(scope="module")
def report():
    rows = []
    data = {}
    for avg_degree in (1.0, 3.0):
        graph, edges = _edge_stream(N, avg_degree, seed=1)
        index = IncrementalFelineIndex(DiGraph(N, []))
        start = time.perf_counter()
        for u, v in edges:
            index.add_edge(u, v)
        incremental_ms = 1000 * (time.perf_counter() - start)

        start = time.perf_counter()
        static = FelineIndex(graph).build()
        rebuild_ms = 1000 * (time.perf_counter() - start)

        pairs = random_pairs(graph, 2000, seed=2)
        start = time.perf_counter()
        for u, v in pairs:
            index.query(u, v)
        inc_query_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        static.query_many(pairs)
        static_query_ms = 1000 * (time.perf_counter() - start)

        rows.append([
            f"deg={avg_degree}", len(edges),
            round(incremental_ms, 2),
            round(incremental_ms * 1000 / len(edges), 2),
            round(rebuild_ms, 2),
            index.reorders,
            round(inc_query_ms, 2),
            round(static_query_ms, 2),
        ])
        data[avg_degree] = {
            "incremental_ms": incremental_ms,
            "rebuild_ms": rebuild_ms,
            "inc_query_ms": inc_query_ms,
            "static_query_ms": static_query_ms,
        }
    result = ExperimentReport(
        experiment_id="EXT-incremental",
        title=f"Incremental FELINE on {N}-vertex streams",
        text=format_table(
            ["stream", "edges", "stream total (ms)", "us/edge",
             "one static rebuild (ms)", "reorders",
             "2k queries inc (ms)", "2k queries static (ms)"],
            rows,
        ),
        data=data,
    )
    save_report(result)
    return result


def test_insertion_throughput(benchmark, report):
    _, edges = _edge_stream(N, 2.0, seed=3)

    def stream():
        index = IncrementalFelineIndex(DiGraph(N, []))
        for u, v in edges:
            index.add_edge(u, v)
        return index

    index = benchmark(stream)
    assert index.num_edges == len(edges)


def test_incremental_queries(benchmark, report):
    graph, edges = _edge_stream(N, 2.0, seed=4)
    index = IncrementalFelineIndex(DiGraph(N, []))
    for u, v in edges:
        index.add_edge(u, v)
    pairs = random_pairs(graph, 2000, seed=5)

    def run():
        return [index.query(u, v) for u, v in pairs]

    answers = benchmark(run)
    static = FelineIndex(graph).build()
    assert answers == static.query_many(pairs)


def test_shape_streaming_beats_rebuild_per_edge(report):
    """The extension's point: absorbing E edges costs far less than E
    static rebuilds (here: less than rebuilding even 30 times)."""
    for metrics in report.data.values():
        assert metrics["incremental_ms"] < 30 * metrics["rebuild_ms"]