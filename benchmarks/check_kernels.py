"""Gate CI on the search-kernel tier contract in ``BENCH_pr10.json``.

Reads a kernel-sweep report written by ``smoke.py`` and enforces, per
(workload, method):

* **numpy never loses** — the numpy tier's batch throughput must be at
  least ``1 - tolerance`` of the pure-Python tier's (the numpy kernels
  fall back to the scalar loop below ``VECTOR_MIN_DEGREE``, so they
  should cost nothing where vectorization can't help);
* **numba must pay for itself** — when numba cells exist (the CI
  with-numba leg; the tier is optional and absent cells are fine), the
  compiled tier must reach ``--numba-speedup`` (default 1.3x) of the
  pure-Python tier on the *search-heavy* workload, the one the kernels
  were built for.

Comparisons are within one report — same machine, same run — so no
calibration normalization is needed.  Against a second (baseline)
report, cells are compared like-for-like per backend after calibration
normalization, exactly as ``check_regression.py`` does.

    PYTHONPATH=src python benchmarks/check_kernels.py FRESH [BASELINE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_pr10.json"

SEARCH_HEAVY = "search-heavy"


def _cells(report: dict) -> dict[tuple[str, str, str], dict]:
    """(workload, method, kernel) -> result cell."""
    cells: dict[tuple[str, str, str], dict] = {}
    for workload in report["workloads"]:
        for r in workload["results"]:
            cells[(workload["workload"], r["method"], r["kernel"])] = dict(
                r, queries=workload["queries"]
            )
    return cells


def _throughput(cell: dict) -> float:
    return cell["queries"] / cell["query_ms"] if cell["query_ms"] else 0.0


def check_tiers(report: dict, tolerance: float, numba_speedup: float) -> int:
    """The within-report tier gates; returns a process exit code."""
    cells = _cells(report)
    keys = sorted({(w, m) for (w, m, _k) in cells})
    failures = []
    print(
        f"kernel tiers in report: "
        f"{sorted({k for (_w, _m, k) in cells})}; numpy tolerance "
        f"{tolerance:.0%}, numba speedup gate {numba_speedup:.2f}x "
        f"(search-heavy only)"
    )
    for workload, method in keys:
        python = cells.get((workload, method, "python"))
        if python is None:
            print(f"  {workload:>14} {method:<10} SKIP (no python cell)")
            continue
        base = _throughput(python)
        numpy_cell = cells.get((workload, method, "numpy"))
        if numpy_cell is not None and base:
            ratio = _throughput(numpy_cell) / base
            verdict = "ok"
            if ratio < 1 - tolerance:
                verdict = "FAIL (numpy slower than python)"
                failures.append((workload, method, "numpy", ratio))
            print(
                f"  {workload:>14} {method:<10} numpy  "
                f"{ratio:6.2f}x of python  {verdict}"
            )
        numba_cell = cells.get((workload, method, "numba"))
        if numba_cell is not None and base:
            ratio = _throughput(numba_cell) / base
            gated = workload == SEARCH_HEAVY
            verdict = "ok" if not gated else (
                "ok" if ratio >= numba_speedup
                else f"FAIL (< {numba_speedup:.2f}x)"
            )
            if gated and ratio < numba_speedup:
                failures.append((workload, method, "numba", ratio))
            print(
                f"  {workload:>14} {method:<10} numba  "
                f"{ratio:6.2f}x of python  {verdict}"
            )
        # The sweep asserts answer equality at measurement time; the
        # stats columns double-check the bit-identity contract here.
        for kernel in ("numpy", "numba"):
            cell = cells.get((workload, method, kernel))
            if cell is None:
                continue
            for field in ("positives", "searches", "expanded", "pruned"):
                if cell.get(field) != python.get(field):
                    failures.append(
                        (workload, method, kernel, f"{field} mismatch")
                    )
                    print(
                        f"  {workload:>14} {method:<10} {kernel}  "
                        f"FAIL ({field}: {cell.get(field)} != "
                        f"{python.get(field)})"
                    )
    if failures:
        print(f"\nFAIL: {len(failures)} kernel gate(s) failed")
        return 1
    print("\nOK: kernel tier contract holds")
    return 0


def check_baseline(fresh: dict, baseline: dict, tolerance: float) -> int:
    """Like-for-like per-backend comparison against a committed report."""
    fresh_cells = _cells(fresh)
    base_cells = _cells(baseline)
    fresh_cal = fresh["calibration_ms"]
    base_cal = baseline["calibration_ms"]
    regressions = []
    for key in sorted(base_cells):
        workload, method, kernel = key
        label = f"{workload:>14} {method:<10} kernel={kernel}"
        if key not in fresh_cells:
            print(f"  {label}  SKIP (not in fresh run)")
            continue
        base = _throughput(base_cells[key]) * base_cal
        new = _throughput(fresh_cells[key]) * fresh_cal
        if not base:
            continue
        ratio = new / base
        verdict = "ok"
        if ratio < 1 - tolerance:
            verdict = "REGRESSION"
            regressions.append((key, ratio))
        print(f"  {label}  {ratio:6.2f}x of baseline  {verdict}")
    if regressions:
        print(f"\nFAIL: {len(regressions)} kernel cell(s) regressed")
        return 1
    print("\nOK: no per-backend regression against the baseline")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path, help="BENCH_pr10.json of this run"
    )
    parser.add_argument(
        "baseline",
        nargs="?",
        type=Path,
        default=None,
        help="committed BENCH_pr10.json for the cross-run comparison "
        "(omit to run only the within-report tier gates)",
    )
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=0.25,
        help="allowed normalized-throughput drop vs the baseline file",
    )
    parser.add_argument("--numba-speedup", type=float, default=1.3)
    args = parser.parse_args(argv[1:])
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    code = check_tiers(fresh, args.tolerance, args.numba_speedup)
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        code = max(
            code,
            check_baseline(fresh, baseline, args.baseline_tolerance),
        )
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv))
