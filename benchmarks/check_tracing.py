"""Gate CI on the distributed-tracing pipeline, end to end.

Boots ``repro shard-serve --trace --slow-ms 0`` as a real subprocess,
drives it with ``repro loadgen --url`` plus direct batch requests, and
enforces the stitching contract rather than performance:

* **topology is visible** — ``/healthz`` is JSON reporting tracing on,
  the shard count, and every worker alive;
* **one trace, many processes** — a traced ``/reach_many`` request
  returns an ``X-Trace-Id`` whose ``/trace?trace_id=`` tree contains
  spans from at least two distinct pids (the HTTP edge and a forked
  shard worker);
* **worker telemetry folds home** — ``/metrics`` exposes
  worker-originated series relabelled with ``shard=``, including the
  per-worker ``repro_shard_index_tier_info`` gauge and at least one
  worker counter/histogram-count series;
* **slow entries join the trace** — ``/slow`` records carry
  ``trace_id`` and the owning ``shard``;
* **the export is loadable** — ``repro trace --out`` writes a
  Perfetto-loadable ``trace_event`` artifact with multi-pid slices.

    PYTHONPATH=src python benchmarks/check_tracing.py EDGES OUTDIR
"""

from __future__ import annotations

import argparse
import json
import random
import re
import subprocess
import sys
import threading
import time
from pathlib import Path
from urllib.request import Request, urlopen

URL_RE = re.compile(r"serving sharded queries on (http://\S+)")


def get_json(url: str):
    with urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def post_json(url: str, doc):
    request = Request(
        url,
        data=json.dumps(doc).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urlopen(request, timeout=30) as response:
        return dict(response.headers), json.loads(
            response.read().decode("utf-8")
        )


def boot_server(edges: str):
    """Start shard-serve with tracing on; returns (process, base_url)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "shard-serve", edges,
            "--shards", "2", "--port", "0", "--trace", "--slow-ms", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []

    def pump():
        for line in process.stdout:
            lines.append(line)

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        for line in list(lines):
            match = URL_RE.search(line)
            if match:
                return process, match.group(1)
        if process.poll() is not None:
            break
        time.sleep(0.05)
    process.kill()
    raise SystemExit(
        "shard-serve never announced its URL; output was:\n" + "".join(lines)
    )


def find_stitched_trace(url: str, num_vertices: int, failures: list[str]):
    """Drive batches until one trace shows spans from >= 2 processes."""
    rng = random.Random(42)
    for _ in range(20):
        pairs = [
            [rng.randrange(num_vertices), rng.randrange(num_vertices)]
            for _ in range(64)
        ]
        headers, doc = post_json(url + "/reach_many", {"pairs": pairs})
        if doc["count"] != len(pairs):
            failures.append(f"batch answered {doc['count']}/{len(pairs)}")
            return None
        trace_id = headers.get("X-Trace-Id")
        if trace_id is None:
            failures.append("traced request returned no X-Trace-Id header")
            return None
        payload = get_json(url + f"/trace?trace_id={trace_id}")
        if payload["span_count"] > 0 and len(payload["pids"]) >= 2:
            print(
                f"stitched trace {trace_id}: {payload['span_count']} spans "
                f"from pids {payload['pids']}"
            )
            return trace_id
    failures.append(
        "no trace collected spans from more than one process in 20 batches"
    )
    return None


def check_metrics(url: str, failures: list[str]) -> None:
    # Telemetry rides heartbeats (and traced responses); give the
    # supervisor a few beats before scraping.
    tier_re = re.compile(r'repro_shard_index_tier_info\{[^}]*shard="(\d+)"')
    counter_re = re.compile(
        r'^repro_(?!shard_)[a-z_]+(?:_total|_count)\{[^}]*shard="\d+"',
        re.MULTILINE,
    )
    deadline = time.monotonic() + 10.0
    text = ""
    while time.monotonic() < deadline:
        with urlopen(url + "/metrics", timeout=10) as response:
            text = response.read().decode("utf-8")
        shards = set(tier_re.findall(text))
        if shards == {"0", "1"} and counter_re.search(text):
            print(
                "worker telemetry merged: tier info for shards "
                f"{sorted(shards)}, worker series example: "
                f"{counter_re.search(text).group(0)}"
            )
            return
        time.sleep(0.25)
    if set(tier_re.findall(text)) != {"0", "1"}:
        failures.append(
            "repro_shard_index_tier_info not exported for both shards"
        )
    if not counter_re.search(text):
        failures.append(
            "no worker-originated counter with a shard label in /metrics"
        )


def check_slow(url: str, failures: list[str]) -> None:
    doc = get_json(url + "/slow")
    records = doc.get("records", [])
    if not records:
        failures.append("/slow is empty despite --slow-ms 0")
        return
    if not any("trace_id" in record for record in records):
        failures.append("no /slow record carries a trace_id")
    if not any("shard" in record for record in records):
        failures.append("no /slow record names its owning shard")


def check_export(
    url: str, trace_id: str, out: Path, failures: list[str]
) -> None:
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "trace", url,
            "--trace-id", trace_id, "--out", str(out),
        ],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        failures.append(
            f"repro trace exited {result.returncode}: {result.stderr}"
        )
        return
    doc = json.loads(out.read_text(encoding="utf-8"))
    slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    if not slices:
        failures.append("trace export has no complete events")
        return
    if not all({"name", "ts", "dur", "pid", "tid"} <= set(e) for e in slices):
        failures.append("trace export slices are missing required fields")
    pids = {e["pid"] for e in slices}
    if len(pids) < 2:
        failures.append(f"trace export covers only pids {sorted(pids)}")
    print(f"trace artifact ok: {len(slices)} slices across {len(pids)} pids")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("edges", help="edge-list file to serve")
    parser.add_argument(
        "outdir", help="directory for the stitched trace artifact"
    )
    parser.add_argument(
        "--duration", type=float, default=1.5,
        help="loadgen duration in seconds (default 1.5)",
    )
    args = parser.parse_args(argv)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    from repro.graph.io import read_edge_list

    num_vertices = read_edge_list(args.edges).num_vertices
    failures: list[str] = []
    process, url = boot_server(args.edges)
    try:
        health = get_json(url + "/healthz")
        print(f"healthz: {json.dumps(health)}")
        if health.get("status") != "ok":
            failures.append(f"healthz status {health.get('status')!r}")
        if health.get("tracing") is not True:
            failures.append("healthz does not report tracing enabled")
        if health.get("shards") != 2:
            failures.append(f"healthz shards = {health.get('shards')!r}")
        if health.get("workers_alive") != 2:
            failures.append(
                f"healthz workers_alive = {health.get('workers_alive')!r}"
            )

        loadgen = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen", args.edges,
                "--url", url, "--duration", str(args.duration),
                "--concurrency", "8", "--pairs", "256", "--seed", "42",
            ],
            text=True,
        )
        if loadgen.returncode != 0:
            failures.append(f"loadgen exited {loadgen.returncode}")

        trace_id = find_stitched_trace(url, num_vertices, failures)
        check_metrics(url, failures)
        check_slow(url, failures)
        if trace_id is not None:
            check_export(
                url, trace_id, outdir / "shard_trace.json", failures
            )
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: one stitched trace per request, edge to worker")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
