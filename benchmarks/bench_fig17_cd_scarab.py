"""F17 — Figure 17: critical-difference diagram for the SCARAB variants.

Runs the Table 5 sweep, applies Friedman + Nemenyi and renders the CD
diagram.  Expected shape: FELINE-SCAR has the better average rank and the
difference is significant at the paper's 0.1 level.
"""

import pytest

from repro.bench.runner import fig17_cd_scarab

from conftest import save_report, scaled

NAMES = ["arxiv", "yago", "go", "pubmed", "citeseer", "uniprot22m",
         "cit-patents", "citeseerx"]


@pytest.fixture(scope="module")
def report():
    result = fig17_cd_scarab(
        names=NAMES, scale=scaled(0.1), num_queries=1500, runs=2
    )
    save_report(result)
    return result


def test_scar_sweep(benchmark, report):
    from repro.baselines.base import create_index
    from repro.datasets.queries import random_pairs
    from repro.datasets.real_stand_ins import load_real_stand_in

    graph = load_real_stand_in("pubmed", scale=scaled(0.1))
    pairs = random_pairs(graph, 1500, seed=0)
    index = create_index("scarab", graph, base_method="feline").build()
    benchmark(index.query_many, pairs)


def test_shape_feline_scar_outranks_grail_scar(report):
    diagram = report.data["diagram"]
    ranks = dict(zip(diagram.method_names, diagram.average_ranks))
    assert ranks["FELINE-SCAR"] < ranks["GRAIL-SCAR"]
