"""A3 — Ablation: how many dominance dimensions are worth it?

The paper stops at two topological orderings; §3.1 notes that more
dimensions are possible ("any nD index with n arbitrarily large").  This
ablation sweeps FELINE-K's dimension count, measuring query time, index
size and falsely implied pairs — quantifying the diminishing returns
behind the authors' choice of two.
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentReport
from repro.core.multidim import MultiDimFelineIndex
from repro.datasets.queries import mixed_workload
from repro.datasets.real_stand_ins import load_real_stand_in
from repro.graph.transitive import count_reachable_pairs

from conftest import save_report, scaled

DIMENSIONS = [2, 3, 4, 6]


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("citeseer", scale=scaled(0.15))


@pytest.fixture(scope="module")
def workload(graph):
    return mixed_workload(graph, 2000, positive_fraction=0.3, seed=0)


@pytest.fixture(scope="module")
def report(graph, workload):
    reachable_pairs = count_reachable_pairs(graph)
    rows = []
    data = {}
    for d in DIMENSIONS:
        index = MultiDimFelineIndex(graph, dimensions=d).build()
        start = time.perf_counter()
        index.query_many(workload.pairs)
        elapsed_ms = 1000 * (time.perf_counter() - start)
        dominance_pairs = sum(
            1
            for u in range(graph.num_vertices)
            for v in range(graph.num_vertices)
            if u != v and index.dominates(u, v)
        )
        false_positives = dominance_pairs - reachable_pairs
        rows.append([
            d, round(elapsed_ms, 2), index.index_size_bytes(),
            false_positives, index.stats.expanded,
        ])
        data[d] = {
            "ms": elapsed_ms,
            "bytes": index.index_size_bytes(),
            "false_positives": false_positives,
            "expanded": index.stats.expanded,
        }
    result = ExperimentReport(
        experiment_id="A3-dimensions",
        title="Ablation: dominance dimensions (FELINE-K)",
        text=format_table(
            ["dims", "2k queries (ms)", "index bytes",
             "false positives", "expanded"],
            rows,
        ),
        data=data,
    )
    save_report(result)
    return result


@pytest.mark.parametrize("d", DIMENSIONS)
def test_query_batch(benchmark, report, graph, workload, d):
    index = MultiDimFelineIndex(graph, dimensions=d).build()
    benchmark(index.query_many, workload.pairs)


def test_shape_false_positives_non_increasing(report):
    counts = [report.data[d]["false_positives"] for d in DIMENSIONS]
    assert counts == sorted(counts, reverse=True)


def test_shape_index_grows_with_dimensions(report):
    sizes = [report.data[d]["bytes"] for d in DIMENSIONS]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]