"""F12 — Figure 12: index plottings, normal vs reversed drawings.

Regenerates the coordinate scatters for the Arxiv, Yago, Go and Pubmed
stand-ins (normal and reversed), saving ASCII density plots, and
benchmarks the pure Algorithm 1 coordinate construction the plots read.
"""

import pytest

from repro.bench.runner import fig12_index_plots
from repro.core.index import build_feline_index
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled


@pytest.fixture(scope="module")
def report():
    result = fig12_index_plots(scale=scaled(0.25))
    save_report(result)
    return result


def test_coordinate_construction(benchmark, report):
    graph = load_real_stand_in("pubmed", scale=scaled(0.25))
    coords = benchmark(
        build_feline_index,
        graph,
        with_level_filter=False,
        with_positive_cut=False,
    )
    assert coords.num_vertices == graph.num_vertices


def test_shape_normal_and_reversed_drawings_differ(report):
    """The paper's observation driving FELINE-I: reversing the edges
    places the vertices differently."""
    coordinates = report.data["coordinates"]
    for name in ("arxiv", "yago", "go", "pubmed"):
        normal = coordinates[(name, "normal")]
        reversed_ = coordinates[(name, "reversed")]
        assert normal != reversed_, name
