"""F11 — Figure 11: critical-difference diagram, query times.

Same pipeline as Figure 10 over the query-time columns.  Expected shape
(paper): FELINE groups with the self-sufficient indexes (INTERVAL,
TF-Label) and out-ranks GRAIL and FERRARI.
"""

import pytest

from repro.bench.runner import fig11_cd_query
from repro.stats.nemenyi import render_cd_diagram

from conftest import save_report, scaled

NAMES = ["arxiv", "yago", "go", "pubmed", "citeseer", "uniprot22m"]


@pytest.fixture(scope="module")
def report():
    result = fig11_cd_query(
        names=NAMES, scale=scaled(0.3), num_queries=3000, runs=2
    )
    save_report(result)
    return result


def test_render_speed(benchmark, report):
    text = benchmark(render_cd_diagram, report.data["diagram"])
    assert "CD =" in text


def test_shape_feline_ranks_at_least_as_well_as_grail(report):
    """The figure's statement is about *average ranks* across datasets:
    the paper places FELINE ahead of GRAIL (and typically ~2x faster).
    Per-dataset milliseconds at bench scale are noisy; ranks are what
    the CD diagram compares."""
    diagram = report.data["diagram"]
    ranks = dict(zip(diagram.method_names, diagram.average_ranks))
    assert ranks["FELINE"] <= ranks["GRAIL"]
