"""CI bench smoke: a fixed-seed micro-benchmark with trace artifact.

Runs FELINE and FELINE-B over a small synthetic DAG (fixed seed, so the
workload is identical across CI runs), records build/query timings to
``BENCH_pr4.json``, and writes a sample Chrome ``trace_event`` file from
the same run.  Both files are uploaded as CI artifacts — the JSON gives
a coarse perf trend line, the trace a clickable span tree for one run.

Not collected by pytest (no ``bench_`` prefix, no test functions); run as

    PYTHONPATH=src python benchmarks/smoke.py [OUT_DIR]
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.bench.harness import MethodSpec, measure_method
from repro.datasets.queries import random_pairs
from repro.graph.generators import random_dag
from repro.obs.spans import disable_tracing, enable_tracing, write_chrome_trace

SEED = 42
VERTICES = 5_000
AVG_DEGREE = 2.0
NUM_QUERIES = 2_000
SPECS = [
    MethodSpec("feline", "FELINE"),
    MethodSpec("feline-b", "FELINE-B"),
]


def run(out_dir: Path) -> dict:
    graph = random_dag(VERTICES, avg_degree=AVG_DEGREE, seed=SEED)
    graph.name = f"random_dag(n={VERTICES}, d={AVG_DEGREE}, seed={SEED})"
    pairs = random_pairs(graph, NUM_QUERIES, seed=SEED)

    tracer = enable_tracing()
    try:
        results = [
            measure_method(graph, spec, pairs, runs=3, percentiles=True)
            for spec in SPECS
        ]
        trace_path = out_dir / "smoke_trace.json"
        write_chrome_trace(tracer, trace_path)
    finally:
        disable_tracing()

    report = {
        "bench": "pr4-smoke",
        "python": platform.python_version(),
        "seed": SEED,
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "queries": NUM_QUERIES,
        },
        "results": [
            {
                "method": r.method,
                "construction_ms": r.construction_ms,
                "query_ms": r.query_ms,
                "index_bytes": r.index_bytes,
                "positives": r.positives,
                "query_p50_us": r.query_p50_us,
                "query_p95_us": r.query_p95_us,
                "query_p99_us": r.query_p99_us,
            }
            for r in results
        ],
        "trace_spans": tracer.total,
    }
    (out_dir / "BENCH_pr4.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    return report


def main(argv: list[str]) -> int:
    out_dir = Path(argv[1]) if len(argv) > 1 else Path("benchmarks/results")
    out_dir.mkdir(parents=True, exist_ok=True)
    report = run(out_dir)
    print(json.dumps(report, indent=2))
    print(f"\nwritten: {out_dir / 'BENCH_pr4.json'}, {out_dir / 'smoke_trace.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
