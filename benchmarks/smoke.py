"""CI bench smoke: fixed-seed micro-benchmark with a workers axis.

Runs FELINE and FELINE-B over two fixed-seed workloads and records
build/query timings to ``BENCH_pr5.json`` plus a sample Chrome
``trace_event`` file from the same run:

* **cut-dominated** — uniform random pairs on a sparse DAG; the
  vectorized cut pass answers almost everything, so this tracks the
  batch engine itself;
* **search-heavy** — pairs pre-filtered to cut *survivors* (the built
  index's own cut table classifies candidates and keeps the undecided
  ones), so batch time is dominated by online searches — the workload
  the survivor-search pool (``--workers``) parallelizes.

The same search-heavy workload also feeds an *observer* sweep written
to ``BENCH_pr8.json``: each method runs with and without an attached
:class:`~repro.perf.observers.ObserverLayer`, recording the survivor
rate (fraction of the batch no O(1) cut decided) and batch timing per
observer count — ``check_observers.py`` gates CI on the survivor-rate
drop and on calibration-normalized throughput.

Both workloads additionally feed a *kernel* sweep written to
``BENCH_pr10.json``: each method's batch runs once per available
search-kernel backend (``python``, ``numpy``, and ``numba`` when
installed — see :mod:`repro.perf.kernels`), with answers asserted
identical across backends.  ``check_kernels.py`` gates CI on the numpy
tier being no slower than pure Python and (when numba cells exist) on
the compiled tier's search-heavy speedup.  Every report records
``kernel_backend`` / ``numba_version`` / ``shared_pages`` so baseline
comparisons are like-for-like.

Every measurement records the machine context needed to compare runs
across hosts: the CPU count (a pool cannot beat ``workers=0`` on a
single core) and a pure-Python *calibration* loop timing that
``check_regression.py`` uses to normalize throughput between the
committed baseline and the machine re-running it.

Not collected by pytest (no ``bench_`` prefix, no test functions); run as

    PYTHONPATH=src python benchmarks/smoke.py [OUT_DIR] [--workers 0,2]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import MethodSpec, measure_method
from repro.baselines.base import create_index
from repro.datasets.queries import random_pairs
from repro.graph.generators import random_dag
from repro.obs.spans import disable_tracing, enable_tracing, write_chrome_trace
from repro.perf.kernels import (
    available_backends,
    numba_version,
    resolve_backend,
)

SEED = 42
VERTICES = 5_000
AVG_DEGREE = 2.0
NUM_QUERIES = 2_000
SPECS = [
    MethodSpec("feline", "FELINE"),
    MethodSpec("feline-b", "FELINE-B"),
]
OBSERVER_AXIS = [0, 16]


def calibrate(rounds: int = 3, n: int = 2_000_000) -> float:
    """Milliseconds for a fixed pure-Python busy loop (best of rounds).

    A machine-speed yardstick: both the committed baseline and a fresh
    run carry it, so ``check_regression.py`` can compare normalized
    throughput across differently-sized runners.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i
        best = min(best, time.perf_counter() - start)
    return 1000 * best


def survivor_pairs(graph, wanted: int, seed: int) -> list[tuple[int, int]]:
    """``wanted`` pairs that FELINE's O(1) cuts cannot decide.

    Classifies random candidates through a throwaway index's cut table
    and keeps the undecided ones — the pairs whose batch cost is the
    online search the pool parallelizes.
    """
    index = create_index("feline", graph).build()
    table = index._cut_table
    keep: list[tuple[int, int]] = []
    attempt = 0
    while len(keep) < wanted and attempt < 40:
        candidates = random_pairs(graph, 8 * wanted, seed=seed + attempt)
        arr = np.asarray(candidates, dtype=np.int64)
        sources, targets = arr[:, 0], arr[:, 1]
        positive, negative = table.classify(sources, targets)
        undecided = ~(positive | negative) & (sources != targets)
        keep.extend(
            (int(u), int(v))
            for u, v in arr[undecided][: wanted - len(keep)]
        )
        attempt += 1
    return keep


def _observer_cell(graph, method: str, pairs, k: int, runs: int) -> dict:
    """One (method, observer-count) batch measurement over ``pairs``."""
    from repro.perf.observers import build_observers

    index = create_index(method, graph).build()
    build_ms = 0.0
    if k:
        start = time.perf_counter()
        index.attach_observers(build_observers(graph, k=k))
        build_ms = 1000 * (time.perf_counter() - start)
    best = float("inf")
    answers = None
    for _ in range(runs):
        index.stats.reset()
        start = time.perf_counter()
        answers = index.query_many(pairs)
        best = min(best, 1000 * (time.perf_counter() - start))
    stats = index.stats
    cell = {
        "method": method,
        "observers": k,
        "query_ms": best,
        "observer_build_ms": build_ms,
        "positives": sum(answers),
        "searches": stats.searches,
        "observer_hits": stats.observer_positive + stats.observer_negative,
        "survivor_rate": stats.searches / max(len(pairs), 1),
    }
    return cell, answers


def observer_report(out_dir: Path, graph, pairs, runs: int = 3) -> dict:
    """The BENCH_pr8 observer sweep: survivor rate and batch timing per
    observer count on the search-heavy workload.

    Asserts answer equivalence between the observer counts as a safety
    net — a benchmark must never publish numbers from wrong answers.
    """
    results = []
    baseline_answers: dict[str, list] = {}
    for spec in SPECS:
        for k in OBSERVER_AXIS:
            cell, answers = _observer_cell(
                graph, spec.method, pairs, k, runs
            )
            results.append(cell)
            reference = baseline_answers.setdefault(spec.method, answers)
            assert answers == reference, (
                f"{spec.method}: observers={k} changed batch answers"
            )
    report = {
        "bench": "pr8-observers",
        "python": platform.python_version(),
        "seed": SEED,
        "cpus": os.cpu_count(),
        "calibration_ms": calibrate(),
        **_environment(),
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "workload": {"name": "search-heavy", "queries": len(pairs)},
        "results": results,
    }
    (out_dir / "BENCH_pr8.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    return report


def _environment() -> dict:
    """The like-for-like context every report carries.

    ``kernel_backend`` is the backend auto-selection resolves to on this
    machine, ``shared_pages`` whether pool workers map a shared arena
    (on whenever a pool is attached) — a baseline measured under one
    configuration must not silently gate a run under another.
    """
    return {
        "kernel_backend": resolve_backend(),
        "numba_version": numba_version(),
        "shared_pages": True,
    }


def _kernel_cell(graph, method: str, pairs, backend: str, runs: int):
    """One (method, kernel-backend) batch measurement over ``pairs``."""
    index = create_index(method, graph)
    index.set_kernel(backend)
    index.build()
    best = float("inf")
    answers = None
    for _ in range(runs):
        index.stats.reset()
        start = time.perf_counter()
        answers = index.query_many(pairs)
        best = min(best, 1000 * (time.perf_counter() - start))
    stats = index.stats
    cell = {
        "method": method,
        "kernel": backend,
        "query_ms": best,
        "positives": sum(answers),
        "searches": stats.searches,
        "expanded": stats.expanded,
        "pruned": stats.pruned,
    }
    return cell, answers


def kernel_report(out_dir: Path, workloads, graph, runs: int = 3) -> dict:
    """The BENCH_pr10 kernel sweep: batch timing per search backend.

    Runs every method over every available backend on both workloads,
    asserting bit-identical answers between backends — the published
    numbers are meaningless if a backend changes a verdict.  The numba
    column appears only where numba is installed; ``check_kernels.py``
    gates conditionally on its presence.
    """
    measured = []
    for name, pairs in workloads:
        results = []
        reference: dict[str, list] = {}
        for spec in SPECS:
            for backend in available_backends()[::-1]:  # python first
                cell, answers = _kernel_cell(
                    graph, spec.method, pairs, backend, runs
                )
                results.append(cell)
                baseline = reference.setdefault(spec.method, answers)
                assert answers == baseline, (
                    f"{spec.method}: kernel={backend} changed batch answers"
                )
        measured.append(
            {"workload": name, "queries": len(pairs), "results": results}
        )
    report = {
        "bench": "pr10-kernels",
        "python": platform.python_version(),
        "seed": SEED,
        "cpus": os.cpu_count(),
        "calibration_ms": calibrate(),
        **_environment(),
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "workloads": measured,
    }
    (out_dir / "BENCH_pr10.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    return report


def _result_dict(r, workers: int) -> dict:
    return {
        "method": r.method,
        "workers": workers,
        "construction_ms": r.construction_ms,
        "query_ms": r.query_ms,
        "index_bytes": r.index_bytes,
        "positives": r.positives,
        "query_p50_us": r.query_p50_us,
        "query_p95_us": r.query_p95_us,
        "query_p99_us": r.query_p99_us,
    }


def run(out_dir: Path, workers_axis: list[int], runs: int = 3) -> dict:
    graph = random_dag(VERTICES, avg_degree=AVG_DEGREE, seed=SEED)
    graph.name = f"random_dag(n={VERTICES}, d={AVG_DEGREE}, seed={SEED})"
    workloads = [
        ("cut-dominated", random_pairs(graph, NUM_QUERIES, seed=SEED)),
        ("search-heavy", survivor_pairs(graph, NUM_QUERIES, seed=SEED)),
    ]

    tracer = enable_tracing()
    try:
        measured = []
        for name, pairs in workloads:
            results = [
                _result_dict(
                    measure_method(
                        graph, spec, pairs, runs=runs,
                        percentiles=True, workers=w,
                    ),
                    workers=w,
                )
                for spec in SPECS
                for w in workers_axis
            ]
            measured.append(
                {"workload": name, "queries": len(pairs), "results": results}
            )
        trace_path = out_dir / "smoke_trace.json"
        write_chrome_trace(tracer, trace_path)
    finally:
        disable_tracing()

    report = {
        "bench": "pr5-smoke",
        "python": platform.python_version(),
        "seed": SEED,
        "cpus": os.cpu_count(),
        "calibration_ms": calibrate(),
        **_environment(),
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "workloads": measured,
        "trace_spans": tracer.total,
    }
    (out_dir / "BENCH_pr5.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    observer_report(out_dir, graph, workloads[1][1], runs=runs)
    kernel_report(out_dir, workloads, graph, runs=runs)
    return report


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out_dir", nargs="?", default="benchmarks/results", type=Path
    )
    parser.add_argument(
        "--workers",
        default="0,2",
        help="comma-separated survivor-pool worker counts to sweep "
        "(default 0,2; 0 = in-process)",
    )
    parser.add_argument("--runs", type=int, default=3)
    args = parser.parse_args(argv[1:])
    workers_axis = [int(w) for w in args.workers.split(",") if w != ""]
    args.out_dir.mkdir(parents=True, exist_ok=True)
    report = run(args.out_dir, workers_axis, runs=args.runs)
    print(json.dumps(report, indent=2))
    print(
        f"\nwritten: {args.out_dir / 'BENCH_pr5.json'}, "
        f"{args.out_dir / 'BENCH_pr8.json'}, "
        f"{args.out_dir / 'BENCH_pr10.json'}, "
        f"{args.out_dir / 'smoke_trace.json'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
