"""F13 — Figure 13: construction times over the synthetic suite.

Sweeps the Table 2 datasets (scaled) over all five methods and benchmarks
FELINE's build across the sparse size ladder, exposing the linearithmic
growth the paper's figure shows.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import fig13_synthetic_construction
from repro.datasets.synthetic import load_synthetic

from conftest import save_report, scaled

LADDER = ["10M", "50M", "100M"]


@pytest.fixture(scope="module")
def report():
    result = fig13_synthetic_construction(
        scale=scaled(0.0002), num_queries=500, runs=1
    )
    save_report(result)
    return result


@pytest.mark.parametrize("name", LADDER)
def test_feline_construction_scaling(benchmark, report, name):
    graph = load_synthetic(name, scale=scaled(0.0002))
    benchmark(lambda: create_index("feline", graph).build())


def test_shape_feline_fastest_on_synthetics(report):
    results = report.data["results"]
    by_key = {(r.dataset, r.method): r for r in results}
    datasets = {r.dataset for r in results}
    wins = 0
    for name in datasets:
        feline = by_key[(name, "FELINE")].construction_ms
        competitors = [
            by_key[(name, m)].construction_ms
            for m in ("GRAIL", "FERRARI", "TF-Label")
            if by_key[(name, m)].construction_ms is not None
        ]
        if competitors and feline < min(competitors):
            wins += 1
    assert wins >= len(datasets) - 1  # FELINE wins (almost) everywhere
