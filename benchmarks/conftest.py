"""Shared plumbing for the benchmark suite.

Every ``bench_*`` module regenerates one artifact of the paper (a table or
figure) and micro-benchmarks its headline operation.  Running

    pytest benchmarks/ --benchmark-only

produces the pytest-benchmark timing table *and* writes each regenerated
artifact to ``benchmarks/results/<experiment>.txt`` so the full
paper-vs-measured comparison is inspectable afterwards (EXPERIMENTS.md is
assembled from those files).

Sizing: scales are chosen so the whole suite runs in a few minutes in
pure Python.  Crank ``REPRO_BENCH_SCALE`` (a multiplier on each bench's
default scale) for bigger runs.

Pass ``--bench-trace`` to collect hierarchical spans for the whole run and
write them as Chrome ``trace_event`` JSON to
``benchmarks/results/bench_trace.json`` (open at https://ui.perfetto.dev).
Tracing is off by default — the opt-in keeps the timing tables honest.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Global multiplier on each bench's default graph scale.
SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: float) -> float:
    """Apply the environment's scale multiplier to a bench's default."""
    return value * SCALE_FACTOR


def save_report(report) -> None:
    """Persist a regenerated artifact under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{report.experiment_id}.txt"
    path.write_text(str(report) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--bench-trace",
        action="store_true",
        default=False,
        help="collect spans and write a Chrome trace to "
        "benchmarks/results/bench_trace.json",
    )


def pytest_configure(config) -> None:
    if config.getoption("--bench-trace"):
        from repro.obs.spans import Tracer, enable_tracing

        # A large ring so multi-minute runs keep their early spans too.
        enable_tracing(Tracer(capacity=200_000))


def pytest_unconfigure(config) -> None:
    if config.getoption("--bench-trace"):
        from repro.obs.spans import (
            disable_tracing,
            get_tracer,
            write_chrome_trace,
        )

        tracer = get_tracer()
        if tracer.enabled:
            RESULTS_DIR.mkdir(exist_ok=True)
            path = RESULTS_DIR / "bench_trace.json"
            write_chrome_trace(tracer, path)
            print(f"\nbench trace written: {path} ({tracer.total} spans)")
        disable_tracing()


def pytest_collection_modifyitems(items) -> None:
    """Cap benchmark rounds so the whole suite stays in the minutes range.

    Pure-Python index builds take seconds each; pytest-benchmark's default
    calibration would repeat them dozens of times for no extra insight.
    """
    for item in items:
        item.add_marker(
            pytest.mark.benchmark(min_rounds=3, max_time=0.5, warmup=False)
        )
