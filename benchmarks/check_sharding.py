"""Gate CI on the shard tier's chaos-drill report.

Takes the JSON written by ``repro chaos-drill --out`` (the same shape as
the committed ``benchmarks/BENCH_pr7.json``) and enforces the
fault-tolerance contract, not performance:

* **faults actually happened** — the chaos phase injected at least
  ``--min-kills`` SIGKILLs and the supervisor restarted workers at
  least once (a drill that murdered nobody proves nothing);
* **no wrong answer, ever** — across baseline, chaos and degraded
  phases, zero answers disagreed with the oracle (``UNKNOWN`` is
  allowed; a wrong boolean is not);
* **no deadline violation** — every query returned within its deadline
  plus the report's own recorded grace;
* **failover is visible and bounded** — at least one failover was
  measured, and its maximum latency stays under ``--max-failover-ms``
  (generous by design: this is a liveness bound, not a benchmark);
* **degraded mode works** — with a shard permanently halted the service
  still answered (throughput > 0) without wrong answers, through the
  fallback path when the drill ran with ``on_shard_loss=fallback``.

    PYTHONPATH=src python benchmarks/check_sharding.py REPORT.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_REPORT = Path(__file__).parent / "BENCH_pr7.json"


def check(report: dict, min_kills: int, max_failover_ms: float) -> int:
    failures = []
    faults = report.get("faults", {})
    phases = report.get("phases", {})
    contract = report.get("contract", {})
    stats = report.get("service_stats", {})
    failover = report.get("failover_latency", {})

    kills = faults.get("sigkills", 0)
    print(
        f"faults injected: {kills} SIGKILLs, "
        f"{faults.get('sigstops', 0)} SIGSTOPs; "
        f"restarts {stats.get('restarts', 0)}"
    )
    if kills < min_kills:
        failures.append(f"only {kills} SIGKILLs injected (need {min_kills})")
    if stats.get("restarts", 0) < 1:
        failures.append("no worker restart recorded — supervision untested")

    for name in ("baseline", "chaos", "degraded"):
        phase = phases.get(name)
        if phase is None:
            failures.append(f"report has no {name!r} phase")
            continue
        print(
            f"  {name:<9} {phase['queries']:>7} queries  "
            f"{phase['qps']:>9} q/s  wrong={phase['wrong']}  "
            f"unknown={phase['unknown']}  "
            f"violations={phase['deadline_violations']}"
        )
        if phase["queries"] < 1:
            failures.append(f"{name} phase answered no queries")

    wrong = contract.get("wrong_answers")
    violations = contract.get("deadline_violations")
    if wrong != 0:
        failures.append(f"{wrong} wrong answers — the contract is broken")
    if violations != 0:
        failures.append(f"{violations} deadline violations")

    count = failover.get("count", 0)
    if count < 1:
        failures.append("no failover measured — hedged re-dispatch untested")
    else:
        print(
            f"  failover  p50 {failover['p50_ms']} ms  "
            f"p95 {failover['p95_ms']} ms  max {failover['max_ms']} ms  "
            f"({count} measured)"
        )
        if failover["max_ms"] > max_failover_ms:
            failures.append(
                f"max failover latency {failover['max_ms']} ms exceeds "
                f"{max_failover_ms} ms"
            )

    degraded = phases.get("degraded")
    loss_policy = report.get("config", {}).get("on_shard_loss")
    if degraded is not None and loss_policy == "fallback":
        if stats.get("degraded_fallback", 0) < 1:
            failures.append(
                "fallback policy configured but the fallback path never ran"
            )

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: fault-tolerance contract holds")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", nargs="?", default=str(DEFAULT_REPORT),
        help="chaos-drill JSON (default: the committed BENCH_pr7.json)",
    )
    parser.add_argument(
        "--min-kills", type=int, default=3,
        help="minimum SIGKILLs the drill must have injected (default 3)",
    )
    parser.add_argument(
        "--max-failover-ms", type=float, default=5000.0,
        help="liveness bound on the slowest measured failover "
        "(default 5000)",
    )
    args = parser.parse_args(argv)
    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    return check(report, args.min_kills, args.max_failover_ms)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
