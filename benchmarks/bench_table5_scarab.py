"""T5 — Table 5: FELINE-SCAR vs GRAIL-SCAR query times.

Regenerates the SCARAB comparison (the paper's §4.4: FELINE also benefits
from the reachability-backbone booster, and FELINE-SCAR beats GRAIL-SCAR)
and benchmarks both SCAR variants' query batches.
"""

import pytest

from repro.baselines.base import create_index
from repro.bench.runner import table5_scarab
from repro.datasets.queries import random_pairs
from repro.datasets.real_stand_ins import load_real_stand_in

from conftest import save_report, scaled

SCAR_VARIANTS = {
    "FELINE-SCAR": "feline",
    "GRAIL-SCAR": "grail",
}
NAMES = ["arxiv", "yago", "go", "pubmed", "citeseer", "uniprot22m"]


@pytest.fixture(scope="module")
def report():
    result = table5_scarab(
        names=NAMES, scale=scaled(0.2), num_queries=2000, runs=2
    )
    save_report(result)
    return result


@pytest.fixture(scope="module")
def graph():
    return load_real_stand_in("citeseer", scale=scaled(0.2))


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph, 2000, seed=0)


@pytest.mark.parametrize("label", list(SCAR_VARIANTS))
def test_query_batch(benchmark, report, graph, pairs, label):
    index = create_index(
        "scarab", graph, base_method=SCAR_VARIANTS[label]
    ).build()
    benchmark(index.query_many, pairs)


@pytest.mark.parametrize("label", list(SCAR_VARIANTS))
def test_construction(benchmark, report, graph, label):
    benchmark(
        lambda: create_index(
            "scarab", graph, base_method=SCAR_VARIANTS[label]
        ).build()
    )
