"""Setup shim: enables legacy editable installs on environments whose
setuptools predates PEP 660 self-sufficiency (no `wheel` package).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
